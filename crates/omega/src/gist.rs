//! The Omega `Gist` operation: `Gist(A, B) ∧ B = A ∧ B`, i.e. "given that B
//! is known, what extra information does A carry?" — including the Omega+
//! enhancement that reduces the strength of modulo constraints using
//! Chinese-remainder reasoning.

use crate::conjunct::{Conjunct, Row};
use crate::linexpr::ConstraintKind;
use crate::num;
use crate::set::{atoms, Set};

/// Gist over sets. The context is collapsed to its hull if it is a union.
pub(crate) fn gist(a: &Set, ctx: &Set) -> Set {
    let ctx_conj: Conjunct = match ctx.as_single_conjunct() {
        Some(c) => c.clone(),
        None => ctx.hull(),
    };
    let mut out = Set::empty(a.space());
    for c in a.conjuncts() {
        let g = gist_conjunct(c, &ctx_conj);
        if !g.is_known_false() {
            out.push_conjunct(g);
        }
    }
    out
}

/// Gist of one conjunct against a conjunct context. Returns a conjunct that
/// is TRUE when `a` adds nothing, or a known-FALSE conjunct when
/// `a ∧ ctx` is empty.
pub(crate) fn gist_conjunct(a: &Conjunct, ctx: &Conjunct) -> Conjunct {
    assert_eq!(a.space(), ctx.space(), "space mismatch in gist");
    if ctx.is_known_false() {
        // Everything is known in an impossible context.
        return Conjunct::universe(a.space());
    }
    if a.is_known_false() || !a.intersect(ctx).is_sat() {
        return Conjunct::empty(a.space());
    }
    let a = crate::project::simplify_conjunct(a);
    let ctx_simpl = crate::project::simplify_conjunct(ctx);

    let space = a.space().clone();
    let named = 1 + space.n_named();

    // Split `a` into atoms; process congruences specially.
    let ctx_congruences = congruence_keys(&ctx_simpl);
    let mut result = Conjunct::universe(&space);
    let mut pending_local_free: Vec<Row> = Vec::new();
    for atom in atoms(&a) {
        if atom.n_locals() == 0 {
            pending_local_free.extend(atom.rows().iter().cloned());
            continue;
        }
        if let Some(ck) = congruence_key_of_atom(&atom) {
            // Reduce against every context congruence over the same
            // expression (the context may know several moduli at once).
            let mut cur = Some((ck.r, ck.m));
            let mut handled = false;
            for bk in &ctx_congruences {
                if bk.w != ck.w {
                    continue;
                }
                handled = true;
                let (r, m) = match cur {
                    Some(rm) => rm,
                    None => break,
                };
                match num::gist_congruence(r, m, bk.r, bk.m) {
                    None => return Conjunct::empty(&space),
                    Some((rho, mu)) => {
                        cur = if mu > 1 { Some((rho, mu)) } else { None };
                    }
                }
            }
            match (handled, cur) {
                (true, None) => {} // fully absorbed by context congruences
                (true, Some((rho, mu))) | (false, Some((rho, mu))) => {
                    // The context may still imply the (possibly reduced)
                    // congruence through a *combination* of constraints
                    // (e.g. a stride plus a range-mod window).
                    let mut reduced = Conjunct::universe(&space);
                    let expr = key_to_expr(&space, &ck.w, rho);
                    reduced.add_congruence(&expr, 0, mu);
                    if !implied_by(&ctx_simpl, &reduced) {
                        result.add_congruence(&expr, 0, mu);
                    }
                }
                (false, None) => copy_atom_into(&mut result, &atom),
            }
            continue;
        }
        // Range-mod or other existential atoms: keep unless implied by ctx.
        if implied_by(&ctx_simpl, &atom) {
            continue;
        }
        copy_atom_into(&mut result, &atom);
    }

    // Greedy redundancy elimination for local-free rows: drop each row
    // implied by ctx ∧ (other kept rows of a) ∧ (existential part kept).
    let mut kept: Vec<Row> = pending_local_free;
    let mut i = 0;
    while i < kept.len() {
        let row = kept[i].clone();
        let mut test = ctx_simpl.intersect(&result);
        for (j, r) in kept.iter().enumerate() {
            if j != i {
                let mut c = r.c[..named].to_vec();
                c.resize(test.ncols(), 0);
                test.push_row(Row::new(r.kind, c));
            }
        }
        if row_implied(&test, &row, named) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    for r in kept {
        let mut c = r.c[..named].to_vec();
        c.resize(result.ncols(), 0);
        result.push_row(Row::new(r.kind, c));
    }
    result.compress_locals();
    result.canonicalize();
    result
}

/// Drops rows of `c` implied by the remaining rows (gist against TRUE).
pub(crate) fn drop_self_redundant(c: &Conjunct) -> Conjunct {
    if c.is_known_false() {
        return c.clone();
    }
    let named = 1 + c.space().n_named();
    let mut out = c.clone();
    let mut i = 0;
    while i < out.rows().len() {
        let row = out.rows()[i].clone();
        // Inequality rows only; equalities and congruences carry structural
        // information the scanner wants to keep.
        if row.kind != ConstraintKind::Geq {
            i += 1;
            continue;
        }
        let mut test = out.clone();
        test.rows_mut().remove(i);
        if row_implied_full(&test, &row) {
            out.rows_mut().remove(i);
        } else {
            i += 1;
        }
    }
    let _ = named;
    out
}

/// Is the full-width inequality `row` implied by `test` (locals included)?
fn row_implied_full(test: &Conjunct, row: &Row) -> bool {
    debug_assert_eq!(row.kind, ConstraintKind::Geq);
    let mut t = test.clone();
    let mut neg: Vec<i64> = row.c.iter().map(|&x| -x).collect();
    neg[0] -= 1;
    neg.resize(t.ncols(), 0);
    t.push_row(Row::new(ConstraintKind::Geq, neg));
    !t.is_sat()
}

/// Does `ctx` imply every row of `atom` (aligned over fresh locals)? Sound
/// but approximate for existential atoms: we test `ctx ∧ ¬atom` emptiness
/// when the atom is complementable, and fall back to syntactic membership
/// (an identical atom in the context) otherwise.
fn implied_by(ctx: &Conjunct, atom: &Conjunct) -> bool {
    if let Some(neg) = crate::set::try_complement_atom(atom) {
        return neg.iter().all(|piece| !ctx.intersect(piece).is_sat());
    }
    let canon = {
        let mut a = atom.clone();
        a.canonicalize();
        a.to_string()
    };
    atoms(ctx).iter().any(|c| {
        let mut c = c.clone();
        c.canonicalize();
        c.to_string() == canon
    })
}

/// Is the (local-free) `row` implied by the conjunct `test`?
fn row_implied(test: &Conjunct, row: &Row, named: usize) -> bool {
    match row.kind {
        ConstraintKind::Geq => {
            let mut t = test.clone();
            let mut neg: Vec<i64> = row.c[..named].iter().map(|&x| -x).collect();
            neg[0] -= 1;
            neg.resize(t.ncols(), 0);
            t.push_row(Row::new(ConstraintKind::Geq, neg));
            !t.is_sat()
        }
        ConstraintKind::Eq => {
            let mut t1 = test.clone();
            let mut c1: Vec<i64> = row.c[..named].to_vec();
            c1[0] -= 1;
            c1.resize(t1.ncols(), 0);
            t1.push_row(Row::new(ConstraintKind::Geq, c1));
            if t1.is_sat() {
                return false;
            }
            let mut t2 = test.clone();
            let mut c2: Vec<i64> = row.c[..named].iter().map(|&x| -x).collect();
            c2[0] -= 1;
            c2.resize(t2.ncols(), 0);
            t2.push_row(Row::new(ConstraintKind::Geq, c2));
            !t2.is_sat()
        }
    }
}

/// Copies an atom's rows into `dst`, remapping its locals onto fresh ones.
fn copy_atom_into(dst: &mut Conjunct, atom: &Conjunct) {
    let named = 1 + atom.space().n_named();
    let base: Vec<usize> = (0..atom.n_locals()).map(|_| dst.add_local()).collect();
    for r in atom.rows() {
        let mut c = r.c[..named].to_vec();
        c.resize(dst.ncols(), 0);
        for (l, &bl) in base.iter().enumerate() {
            c[named + bl] = r.c[named + l];
        }
        dst.push_row(Row::new(r.kind, c));
    }
}

/// A congruence `w·x ≡ r (mod m)` with a sign-normalized non-constant part.
#[derive(Debug, PartialEq, Eq)]
struct CongruenceKey {
    /// Coefficients over `[params..., vars...]` (no constant), first
    /// non-zero entry positive.
    w: Vec<i64>,
    m: i64,
    r: i64,
}

fn congruence_key_of_atom(atom: &Conjunct) -> Option<CongruenceKey> {
    let named = 1 + atom.space().n_named();
    if atom.n_locals() != 1 || atom.rows().len() != 1 {
        return None;
    }
    let row = &atom.rows()[0];
    if row.kind != ConstraintKind::Eq {
        return None;
    }
    let m = row.c[named].abs();
    if m <= 1 {
        return None;
    }
    let mut w: Vec<i64> = row.c[1..named].to_vec();
    let mut c0 = row.c[0];
    if let Some(&first) = w.iter().find(|&&x| x != 0) {
        if first < 0 {
            for x in &mut w {
                *x = -*x;
            }
            c0 = -c0;
        }
    }
    // w·x + c0 ≡ 0 (mod m) ⟺ w·x ≡ -c0 (mod m)
    Some(CongruenceKey {
        w,
        m,
        r: num::mod_floor(-c0, m),
    })
}

fn congruence_keys(c: &Conjunct) -> Vec<CongruenceKey> {
    atoms(c).iter().filter_map(congruence_key_of_atom).collect()
}

fn key_to_expr(space: &crate::space::Space, w: &[i64], rho: i64) -> crate::linexpr::LinExpr {
    let mut raw = vec![0i64; 1 + space.n_named()];
    raw[0] = -rho;
    raw[1..].copy_from_slice(w);
    crate::linexpr::LinExpr::from_raw(space, &raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::space::Space;

    fn sp() -> Space {
        Space::new::<&str>(&[], &["i", "j"])
    }

    fn set(text: &str) -> Set {
        Set::parse(text).unwrap()
    }

    #[test]
    fn paper_gist_examples() {
        // Gist({i>10 && j>10}, {j>10}) = {i>10}
        let a = set("{ [i,j] : i > 10 && j > 10 }");
        let b = set("{ [i,j] : j > 10 }");
        let g = a.gist(&b);
        assert_eq!(g.conjuncts().len(), 1);
        assert_eq!(g.conjuncts()[0].to_string(), "i - 11 >= 0");

        // Gist({1<=i<=100}, {i>10}) = {i<=100}
        let a = set("{ [i,j] : 1 <= i <= 100 }");
        let b = set("{ [i,j] : i > 10 }");
        let g = a.gist(&b);
        assert_eq!(g.conjuncts()[0].to_string(), "-i + 100 >= 0");
    }

    #[test]
    fn paper_gist_modulo_strength_reduction() {
        // Gist({∃a(i=6a)}, {∃a(i=2a)}) = {∃a(i=3a)}
        let a = set("{ [i,j] : exists(a : i = 6a) }");
        let b = set("{ [i,j] : exists(a : i = 2a) }");
        let g = a.gist(&b);
        assert_eq!(g.conjuncts().len(), 1);
        let cg = g.conjuncts()[0].congruences();
        assert_eq!(cg.len(), 1);
        assert_eq!(cg[0].1, 3);
        // Soundness: gist ∧ b == a ∧ b pointwise
        let gb = g.intersect(&b);
        let ab = a.intersect(&b);
        for i in -24..=24 {
            assert_eq!(gb.contains(&[], &[i, 0]), ab.contains(&[], &[i, 0]), "i={i}");
        }
    }

    #[test]
    fn gist_incompatible_congruence_is_false() {
        let a = set("{ [i,j] : exists(a : i = 2a) }");
        let b = set("{ [i,j] : exists(a : i = 2a+1) }");
        let g = a.gist(&b);
        assert!(g.is_empty());
    }

    #[test]
    fn gist_of_empty_intersection_is_false() {
        let a = set("{ [i,j] : i >= 10 }");
        let b = set("{ [i,j] : i <= 5 }");
        assert!(a.gist(&b).is_empty());
    }

    #[test]
    fn gist_with_true_context_keeps_all() {
        let s = sp();
        let a = set("{ [i,j] : 0 <= i <= 9 }");
        let g = a.gist(&Set::universe(&s));
        for i in -2..12 {
            assert_eq!(
                g.contains(&[], &[i, 0]),
                (0..=9).contains(&i),
                "i={i}"
            );
        }
    }

    #[test]
    fn gist_identical_congruence_drops() {
        let a = set("{ [i,j] : exists(a : i = 4a+1) }");
        let g = a.gist(&a);
        assert!(g.conjuncts().len() == 1 && g.conjuncts()[0].is_universe(), "{g}");
    }

    #[test]
    fn gist_defining_property_random() {
        // gist(A, B) ∧ B == A ∧ B over a window for several pairs.
        let cases = [
            ("{ [i,j] : 2i + j >= 3 && i <= 10 }", "{ [i,j] : i >= 0 && j >= 0 }"),
            ("{ [i,j] : exists(a : i = 3a) && 0 <= i <= 30 }", "{ [i,j] : exists(b : i = 6b) }"),
            ("{ [i,j] : i = j && 0 <= i <= 5 }", "{ [i,j] : 0 <= j <= 5 }"),
        ];
        for (ta, tb) in cases {
            let a = set(ta);
            let b = set(tb);
            let g = a.gist(&b);
            let gb = g.intersect(&b);
            let ab = a.intersect(&b);
            for i in -9..=9 {
                for j in -9..=9 {
                    assert_eq!(
                        gb.contains(&[], &[i, j]),
                        ab.contains(&[], &[i, j]),
                        "A={ta} B={tb} i={i} j={j} gist={g}"
                    );
                }
            }
        }
    }

    #[test]
    fn drop_self_redundant_removes_weaker_bound() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&(LinExpr::var(&s, 0) - 5).geq0()); // i >= 5
        c.add_constraint(&LinExpr::var(&s, 0).geq0()); // i >= 0 (redundant)
        let out = drop_self_redundant(&c);
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.rows()[0].c[0], -5);
    }
}
