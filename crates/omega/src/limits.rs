//! Per-query resource governor and degradation certificates.
//!
//! The Omega test is worst-case exponential (splintering) and squares
//! coefficient magnitudes during Fourier–Motzkin elimination, so every
//! solver entry point runs under a [`Limits`] governor: a work budget, a
//! recursion-depth cap, a row-count cap and an optional wall-clock
//! deadline. When a limit trips, the solver answers *conservatively*
//! (satisfiable — sound for every caller: emptiness pruning keeps more
//! pieces, implication checks keep more constraints) and records the
//! reason in a thread-local [`DegradeReasons`] set instead of panicking.
//!
//! The scope of an observation is [`with_limits`]: it installs a governor,
//! runs a closure, and returns the closure's result together with a
//! [`Certainty`] certificate — [`Certainty::Exact`] when no query inside
//! the scope degraded, [`Certainty::Approximate`] (with the union of
//! reasons) otherwise. Reasons are a commutative bitmask, so the
//! certificate is deterministic regardless of worker-thread interleaving.
//!
//! Degraded verdicts are **never** inserted into the process-wide memo
//! caches ([`crate::cache`]): exact verdicts are exact under any limits and
//! therefore always safe to share, while a budget-starved verdict must not
//! be replayed to a later caller with a fresh budget.

use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Resource limits for one satisfiability/gist query, installed for a
/// scope with [`with_limits`] and consulted by the tier-2 Omega test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Work budget (row-visits) per query. Splintering is worst-case
    /// exponential; the default (200 000) is far above anything realistic
    /// loop nests need.
    pub budget: u64,
    /// Recursion-depth cap of the Omega test.
    pub max_depth: usize,
    /// Row-count cap within one derivation: Fourier–Motzkin can square
    /// the system size, so a runaway derivation degrades instead of
    /// exhausting memory.
    pub row_cap: usize,
    /// Optional wall-clock deadline. `None` (the default) keeps results
    /// a pure function of the input — required for byte-identical output
    /// across thread counts; set it only when latency matters more than
    /// run-to-run reproducibility.
    pub deadline: Option<Instant>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            budget: 200_000,
            max_depth: 512,
            row_cap: 2_048,
            deadline: None,
        }
    }
}

impl Limits {
    /// Effectively unlimited resources (no deadline). Useful for oracles
    /// and tests that must not degrade.
    pub fn unlimited() -> Limits {
        Limits {
            budget: u64::MAX,
            max_depth: usize::MAX,
            row_cap: usize::MAX,
            deadline: None,
        }
    }

    /// Errors with [`OmegaError::DeadlineExceeded`] when the deadline (if
    /// any) has passed.
    pub(crate) fn check_deadline(&self) -> Result<(), OmegaError> {
        match self.deadline {
            Some(d) if Instant::now() >= d => Err(OmegaError::DeadlineExceeded),
            _ => Ok(()),
        }
    }
}

/// A structured solver failure: why a query could not be answered exactly.
///
/// These never escape the crate as panics — the solver catches them at the
/// query boundary, answers conservatively, and records the reason in the
/// scope's [`DegradeReasons`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OmegaError {
    /// A coefficient left the `i64` range even via `i128` intermediates.
    Overflow,
    /// The per-query work budget ([`Limits::budget`]) ran out.
    BudgetExhausted,
    /// The Omega test recursed past [`Limits::max_depth`].
    DepthExceeded,
    /// A derivation grew past [`Limits::row_cap`] rows.
    RowCapExceeded,
    /// The wall-clock deadline ([`Limits::deadline`]) passed.
    DeadlineExceeded,
}

impl OmegaError {
    /// Stable human-readable tag, also used by `Display`.
    pub fn as_str(self) -> &'static str {
        match self {
            OmegaError::Overflow => "overflow",
            OmegaError::BudgetExhausted => "budget-exhausted",
            OmegaError::DepthExceeded => "depth-exceeded",
            OmegaError::RowCapExceeded => "row-cap-exceeded",
            OmegaError::DeadlineExceeded => "deadline-exceeded",
        }
    }

    fn bit(self) -> u8 {
        match self {
            OmegaError::Overflow => 1 << 0,
            OmegaError::BudgetExhausted => 1 << 1,
            OmegaError::DepthExceeded => 1 << 2,
            OmegaError::RowCapExceeded => 1 << 3,
            OmegaError::DeadlineExceeded => 1 << 4,
        }
    }

    const ALL: [OmegaError; 5] = [
        OmegaError::Overflow,
        OmegaError::BudgetExhausted,
        OmegaError::DepthExceeded,
        OmegaError::RowCapExceeded,
        OmegaError::DeadlineExceeded,
    ];
}

impl fmt::Display for OmegaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Error for OmegaError {}

/// The set of failure modes observed inside a scope, as a commutative
/// bitmask: the union is order-independent, so certificates are identical
/// for every thread count and scheduling.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct DegradeReasons(u8);

impl DegradeReasons {
    /// The empty set (no degradation observed).
    pub const EMPTY: DegradeReasons = DegradeReasons(0);

    /// True when no failure mode was observed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Does the set contain this failure mode?
    pub fn contains(self, e: OmegaError) -> bool {
        self.0 & e.bit() != 0
    }

    /// Set union (commutative, associative).
    #[must_use]
    pub fn union(self, other: DegradeReasons) -> DegradeReasons {
        DegradeReasons(self.0 | other.0)
    }

    /// Adds one failure mode.
    #[must_use]
    pub fn with(self, e: OmegaError) -> DegradeReasons {
        DegradeReasons(self.0 | e.bit())
    }

    /// The contained failure modes, in declaration order.
    pub fn iter(self) -> impl Iterator<Item = OmegaError> {
        OmegaError::ALL
            .into_iter()
            .filter(move |e| self.contains(*e))
    }
}

impl fmt::Display for DegradeReasons {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("none");
        }
        let mut first = true;
        for e in self.iter() {
            if !first {
                f.write_str("+")?;
            }
            first = false;
            f.write_str(e.as_str())?;
        }
        Ok(())
    }
}

/// Degradation certificate attached to every verdict produced under a
/// [`with_limits`] scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Certainty {
    /// Every query inside the scope was answered exactly.
    Exact,
    /// At least one query degraded to a conservative answer; the reasons
    /// say which failure modes were hit. The result is a sound
    /// over-approximation, never wrong — just possibly looser than the
    /// exact answer.
    Approximate(DegradeReasons),
}

impl Certainty {
    /// True for [`Certainty::Exact`].
    pub fn is_exact(self) -> bool {
        matches!(self, Certainty::Exact)
    }

    /// The observed reasons (empty for [`Certainty::Exact`]).
    pub fn reasons(self) -> DegradeReasons {
        match self {
            Certainty::Exact => DegradeReasons::EMPTY,
            Certainty::Approximate(r) => r,
        }
    }

    /// `Exact` for an empty reason set, `Approximate` otherwise.
    pub fn from_reasons(r: DegradeReasons) -> Certainty {
        if r.is_empty() {
            Certainty::Exact
        } else {
            Certainty::Approximate(r)
        }
    }

    /// Combines two certificates: exact only when both are.
    #[must_use]
    pub fn merge(self, other: Certainty) -> Certainty {
        Certainty::from_reasons(self.reasons().union(other.reasons()))
    }
}

impl fmt::Display for Certainty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Certainty::Exact => f.write_str("exact"),
            Certainty::Approximate(r) => write!(f, "approximate({r})"),
        }
    }
}

thread_local! {
    static LIMITS: Cell<Limits> = Cell::new(Limits::default());
    static REASONS: Cell<u8> = const { Cell::new(0) };
}

/// The limits governing solver queries on the current thread
/// ([`Limits::default`] outside any [`with_limits`] scope).
pub fn current() -> Limits {
    LIMITS.with(Cell::get)
}

/// Records a degradation on the current thread's scope, counting *why*
/// per reason (the always-on histogram view of which limit actually fires
/// in production — budget starvation and deadline shedding look identical
/// in a `Certainty` but need different operator responses).
pub(crate) fn note(e: OmegaError) {
    REASONS.with(|r| r.set(r.get() | e.bit()));
    match e {
        OmegaError::Overflow => crate::stats::bump!(degrade_overflow),
        OmegaError::BudgetExhausted => crate::stats::bump!(degrade_budget),
        OmegaError::DepthExceeded => crate::stats::bump!(degrade_depth),
        OmegaError::RowCapExceeded => crate::stats::bump!(degrade_rowcap),
        OmegaError::DeadlineExceeded => crate::stats::bump!(degrade_deadline),
    }
}

/// Merges externally observed reasons into the current scope. Public so a
/// fork/join caller can propagate reasons collected on worker threads back
/// into the spawning scope (the union is order-independent, keeping
/// certificates deterministic under any scheduling).
pub fn note_reasons(reasons: DegradeReasons) {
    REASONS.with(|r| r.set(r.get() | reasons.0));
}

/// Runs `f` under `limits` and reports what happened: the closure's result
/// plus a [`Certainty`] covering every solver query made inside. On exit
/// the previous limits are restored and the observed reasons also
/// propagate to the enclosing scope (an outer observer must not report
/// `Exact` when a nested scope degraded).
pub fn with_limits<R>(limits: Limits, f: impl FnOnce() -> R) -> (R, Certainty) {
    let prev_limits = LIMITS.with(|l| l.replace(limits));
    let prev_reasons = REASONS.with(|r| r.replace(0));
    let result = f();
    let observed = REASONS.with(Cell::get);
    LIMITS.with(|l| l.set(prev_limits));
    REASONS.with(|r| r.set(prev_reasons | observed));
    (result, Certainty::from_reasons(DegradeReasons(observed)))
}

/// Runs `f` under the *current* limits and returns the delta of reasons it
/// produced (which also remain noted in the enclosing scope). Used to
/// decide per-computation cacheability: only results whose delta is empty
/// may enter the process-wide memo caches.
pub(crate) fn observe<R>(f: impl FnOnce() -> R) -> (R, DegradeReasons) {
    let prev = REASONS.with(|r| r.replace(0));
    let result = f();
    let observed = REASONS.with(Cell::get);
    REASONS.with(|r| r.set(prev | observed));
    (result, DegradeReasons(observed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_historical_constants() {
        let l = Limits::default();
        assert_eq!(l.budget, 200_000);
        assert_eq!(l.max_depth, 512);
        assert_eq!(l.row_cap, 2_048);
        assert_eq!(l.deadline, None);
    }

    #[test]
    fn reasons_union_and_display() {
        let r = DegradeReasons::EMPTY
            .with(OmegaError::Overflow)
            .with(OmegaError::BudgetExhausted);
        assert!(r.contains(OmegaError::Overflow));
        assert!(r.contains(OmegaError::BudgetExhausted));
        assert!(!r.contains(OmegaError::DepthExceeded));
        assert_eq!(r.to_string(), "overflow+budget-exhausted");
        assert_eq!(DegradeReasons::EMPTY.to_string(), "none");
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn certainty_merge() {
        let a = Certainty::Exact;
        let b = Certainty::from_reasons(DegradeReasons::EMPTY.with(OmegaError::RowCapExceeded));
        assert!(a.merge(a).is_exact());
        assert!(!a.merge(b).is_exact());
        assert!(b.merge(a).reasons().contains(OmegaError::RowCapExceeded));
    }

    #[test]
    fn with_limits_restores_and_propagates() {
        let outer = Limits {
            budget: 99,
            ..Limits::default()
        };
        let ((), cert) = with_limits(outer, || {
            assert_eq!(current().budget, 99);
            let ((), inner) = with_limits(Limits::default(), || {
                note(OmegaError::Overflow);
            });
            assert!(!inner.is_exact());
            // Inner degradation propagates to this (outer) scope.
        });
        assert!(cert.reasons().contains(OmegaError::Overflow));
        assert_eq!(current(), Limits::default());
    }

    #[test]
    fn observe_reports_delta_and_keeps_note() {
        let ((), cert) = with_limits(Limits::default(), || {
            note(OmegaError::DepthExceeded);
            let ((), delta) = observe(|| note(OmegaError::Overflow));
            assert!(delta.contains(OmegaError::Overflow));
            assert!(!delta.contains(OmegaError::DepthExceeded));
            let ((), clean) = observe(|| ());
            assert!(clean.is_empty());
        });
        let r = cert.reasons();
        assert!(r.contains(OmegaError::Overflow) && r.contains(OmegaError::DepthExceeded));
    }

    #[test]
    fn deadline_check() {
        let l = Limits {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..Limits::default()
        };
        assert_eq!(l.check_deadline(), Err(OmegaError::DeadlineExceeded));
        assert_eq!(Limits::default().check_deadline(), Ok(()));
    }
}
