//! Affine mapping functions between iteration spaces (paper §2.1): a loop
//! transformation is a mapping applied to an iteration space, e.g. loop
//! interchange is `{[i,j] → [j,i]}`. Images are computed exactly through
//! relation projection, so non-unimodular maps produce the expected stride
//! constraints (`{[i] → [2i]}` yields `∃a: out = 2a`).

use crate::linexpr::LinExpr;
use crate::set::Set;
use crate::space::Space;
use std::fmt;

/// An affine map `dst_k = exprs[k](src)` from one [`Space`] to another
/// (parameters must agree).
///
/// # Examples
///
/// ```
/// use omega::{AffineMap, LinExpr, Set, Space};
/// let src = Space::new(&["n"], &["i", "j"]);
/// let dst = Space::new(&["n"], &["x", "y"]);
/// // Interchange: (i, j) → (j, i).
/// let m = AffineMap::new(
///     src.clone(),
///     dst,
///     vec![LinExpr::var(&src, 1), LinExpr::var(&src, 0)],
/// );
/// let s = Set::parse("[n] -> { [i,j] : 0 <= i < n && 0 <= j < i }").unwrap();
/// let image = m.apply(&s);
/// assert!(image.contains(&[10], &[3, 5])); // (5,3) → (3,5)
/// assert!(!image.contains(&[10], &[5, 3]));
/// ```
#[derive(Clone, Debug)]
pub struct AffineMap {
    src: Space,
    dst: Space,
    exprs: Vec<LinExpr>,
}

impl AffineMap {
    /// Builds a map from per-output expressions over the source space.
    ///
    /// # Panics
    ///
    /// Panics if parameter lists differ, the expression count does not
    /// match the destination arity, or an expression is over another space.
    pub fn new(src: Space, dst: Space, exprs: Vec<LinExpr>) -> AffineMap {
        assert_eq!(
            src.param_names(),
            dst.param_names(),
            "mapping must preserve parameters"
        );
        assert_eq!(exprs.len(), dst.n_vars(), "one expression per output dim");
        for e in &exprs {
            assert_eq!(e.space(), &src, "expression over the wrong space");
        }
        AffineMap { src, dst, exprs }
    }

    /// The identity map on `space`.
    pub fn identity(space: &Space) -> AffineMap {
        let exprs = (0..space.n_vars())
            .map(|v| LinExpr::var(space, v))
            .collect();
        AffineMap::new(space.clone(), space.clone(), exprs)
    }

    /// Source space.
    pub fn src(&self) -> &Space {
        &self.src
    }

    /// Destination space.
    pub fn dst(&self) -> &Space {
        &self.dst
    }

    /// The output expressions.
    pub fn exprs(&self) -> &[LinExpr] {
        &self.exprs
    }

    /// Exact image of a set under the map, computed through relation
    /// projection: constraints `dst_k = e_k(src)` are conjoined with the
    /// set over a combined space and the source dimensions are projected
    /// away. Non-invertible maps produce stride constraints, collapsing
    /// maps lose information — both exactly.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not over the source space.
    pub fn apply(&self, s: &Set) -> Set {
        assert_eq!(s.space(), &self.src, "set over the wrong space");
        let ns = self.src.n_vars();
        let nd = self.dst.n_vars();
        // Combined space [src vars..., dst vars...].
        let mut names: Vec<String> = (0..ns).map(|v| format!("__s{v}")).collect();
        names.extend(self.dst.var_names().iter().cloned());
        let pr: Vec<&str> = self.src.param_names().iter().map(String::as_str).collect();
        let vr: Vec<&str> = names.iter().map(String::as_str).collect();
        let combined = Space::new(&pr, &vr);
        // Embed the set on the source half.
        let map_idx: Vec<usize> = (0..ns).collect();
        let mut joint = s.remap_vars(&combined, &map_idx);
        // dst_k - e_k(src) = 0.
        for (k, e) in self.exprs.iter().enumerate() {
            let e_c = e.remap_vars(&combined, &map_idx);
            let c = (LinExpr::var(&combined, ns + k) - e_c).eq0();
            joint = joint.intersect_constraint(&c);
        }
        // Project out the source half and drop those dimensions.
        let projected = joint.project_out(0, ns);
        let out_map: Vec<usize> = (0..ns)
            .map(|_| 0) // placeholder, replaced below
            .chain(0..nd)
            .collect();
        // remap_vars requires distinct targets for every source dim; since
        // the first `ns` dims are unconstrained after projection we cannot
        // simply drop them via remap. Rebuild through raw rows instead.
        let _ = out_map;
        let mut out = Set::empty(&self.dst);
        for c in projected.conjuncts() {
            out = out.union(&drop_leading_vars(c, &combined, &self.dst, ns));
        }
        out
    }

    /// Composition `other ∘ self` (apply `self` first).
    ///
    /// # Panics
    ///
    /// Panics if the spaces do not chain.
    pub fn then(&self, other: &AffineMap) -> AffineMap {
        assert_eq!(&self.dst, &other.src, "maps do not compose");
        let exprs = other
            .exprs
            .iter()
            .map(|e| {
                // Substitute each dst var of `self` into `other`'s expr.
                let mut raw = vec![0i64; 1 + self.src.n_named()];
                raw[0] = e.constant_term();
                for p in 0..self.src.n_params() {
                    raw[1 + p] = e.param_coeff(p);
                }
                let mut acc = LinExpr::from_raw(&self.src, &raw);
                for v in 0..other.src.n_vars() {
                    let k = e.var_coeff(v);
                    if k != 0 {
                        acc = acc + self.exprs[v].clone() * k;
                    }
                }
                acc
            })
            .collect();
        AffineMap::new(self.src.clone(), other.dst.clone(), exprs)
    }

    /// Inverse of a **unimodular** map (determinant ±1 on the variable
    /// part; translations and parameter offsets allowed). Returns `None`
    /// when the map is not square or not unimodular — such reorderings do
    /// not preserve the amount of work (paper §2.1).
    pub fn inverse(&self) -> Option<AffineMap> {
        let n = self.src.n_vars();
        if self.dst.n_vars() != n {
            return None;
        }
        // Variable-part matrix A with dst = A·src + B·params + c.
        let a: Vec<Vec<i64>> = self
            .exprs
            .iter()
            .map(|e| (0..n).map(|v| e.var_coeff(v)).collect())
            .collect();
        let det = determinant(&a);
        if det.abs() != 1 {
            return None;
        }
        let adj = adjugate(&a);
        // inv(A) = adj(A) / det; with det ±1 this is integral.
        let inv: Vec<Vec<i64>> = adj
            .iter()
            .map(|row| row.iter().map(|&x| x * det).collect())
            .collect();
        // src = inv(A)·(dst - B·params - c)
        let np = self.src.n_params();
        let mut exprs = Vec::with_capacity(n);
        for inv_i in &inv {
            let mut raw = vec![0i64; 1 + self.dst.n_named()];
            for (j, &w) in inv_i.iter().enumerate() {
                // coefficient of dst_j
                raw[1 + np + j] = w;
                // subtract inv * (B params + c)
                raw[0] -= w * self.exprs[j].constant_term();
                for p in 0..np {
                    raw[1 + p] -= w * self.exprs[j].param_coeff(p);
                }
            }
            exprs.push(LinExpr::from_raw(&self.dst, &raw));
        }
        Some(AffineMap::new(self.dst.clone(), self.src.clone(), exprs))
    }
}

fn drop_leading_vars(
    c: &crate::conjunct::Conjunct,
    combined: &Space,
    dst: &Space,
    ns: usize,
) -> Set {
    debug_assert!(
        (0..ns).all(|v| !c.uses_var(v)),
        "projection left a source var"
    );
    let named_src = 1 + combined.n_named();
    let mut out = crate::conjunct::Conjunct::universe(dst);
    for _ in 0..c.n_locals() {
        out.add_local();
    }
    let np = combined.n_params();
    let named_dst = 1 + dst.n_named();
    for (kind, row) in c.rows_raw() {
        let mut r = vec![0i64; named_dst + c.n_locals()];
        r[0] = row[0];
        r[1..1 + np].copy_from_slice(&row[1..1 + np]);
        let nv = dst.n_vars();
        r[1 + np..1 + np + nv].copy_from_slice(&row[1 + np + ns..1 + np + ns + nv]);
        r[named_dst..named_dst + c.n_locals()]
            .copy_from_slice(&row[named_src..named_src + c.n_locals()]);
        out.push_row(crate::conjunct::Row::new(kind, r));
    }
    out.to_set()
}

fn determinant(a: &[Vec<i64>]) -> i64 {
    let n = a.len();
    if n == 0 {
        return 1;
    }
    if n == 1 {
        return a[0][0];
    }
    // Laplace expansion (loop dimensions are small).
    let mut det = 0i64;
    for (j, &x) in a[0].iter().enumerate() {
        if x == 0 {
            continue;
        }
        let minor: Vec<Vec<i64>> = a[1..]
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|&(k, _)| k != j)
                    .map(|(_, &v)| v)
                    .collect()
            })
            .collect();
        let sign = if j % 2 == 0 { 1 } else { -1 };
        det += sign * x * determinant(&minor);
    }
    det
}

fn adjugate(a: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let n = a.len();
    let mut adj = vec![vec![0i64; n]; n];
    for (j, adj_row) in adj.iter_mut().enumerate() {
        for (i, slot) in adj_row.iter_mut().enumerate() {
            let minor: Vec<Vec<i64>> = (0..n)
                .filter(|&r| r != i)
                .map(|r| (0..n).filter(|&c| c != j).map(|c| a[r][c]).collect())
                .collect();
            let sign = if (i + j) % 2 == 0 { 1 } else { -1 };
            *slot = sign * determinant(&minor); // transpose of cofactors
        }
    }
    adj
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ins = self.src.var_names().join(",");
        let outs: Vec<String> = self.exprs.iter().map(|e| e.to_string()).collect();
        write!(f, "{{[{ins}] -> [{}]}}", outs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spaces() -> (Space, Space) {
        (
            Space::new(&["n"], &["i", "j"]),
            Space::new(&["n"], &["x", "y"]),
        )
    }

    #[test]
    fn interchange_image_matches_paper_intro() {
        let (src, dst) = spaces();
        let m = AffineMap::new(
            src.clone(),
            dst,
            vec![LinExpr::var(&src, 1), LinExpr::var(&src, 0)],
        );
        let s = Set::parse("[n] -> { [i,j] : 0 <= i < n && 0 <= j < i }").unwrap();
        let image = m.apply(&s);
        for i in -1..7 {
            for j in -1..7 {
                assert_eq!(
                    s.contains(&[6], &[i, j]),
                    image.contains(&[6], &[j, i]),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn non_unimodular_map_produces_stride() {
        let src = Space::new::<&str>(&[], &["i"]);
        let dst = Space::new::<&str>(&[], &["x"]);
        let m = AffineMap::new(src.clone(), dst, vec![LinExpr::var(&src, 0) * 2 + 1]);
        let s = Set::parse("{ [i] : 0 <= i <= 10 }").unwrap();
        let image = m.apply(&s);
        for x in -2..25 {
            assert_eq!(
                image.contains(&[], &[x]),
                (1..=21).contains(&x) && x % 2 == 1,
                "x={x}"
            );
        }
        assert!(m.inverse().is_none(), "×2 is not unimodular");
    }

    #[test]
    fn skew_inverse_roundtrips() {
        let (src, dst) = spaces();
        // (i, j) → (i, j + 2i): unimodular skew.
        let m = AffineMap::new(
            src.clone(),
            dst.clone(),
            vec![
                LinExpr::var(&src, 0),
                LinExpr::var(&src, 1) + LinExpr::var(&src, 0) * 2,
            ],
        );
        let inv = m.inverse().expect("unimodular");
        let round = m.then(&inv);
        // round is the identity on points.
        let s = Set::parse("[n] -> { [i,j] : 0 <= i <= 4 && 0 <= j <= 4 }").unwrap();
        let back = round.apply(&s);
        assert!(back.same_set(&s), "{back}");
    }

    #[test]
    fn composition_applies_in_order() {
        let (src, dst) = spaces();
        let swap = AffineMap::new(
            src.clone(),
            dst.clone(),
            vec![LinExpr::var(&src, 1), LinExpr::var(&src, 0)],
        );
        let shift = AffineMap::new(
            dst.clone(),
            src.clone(),
            vec![LinExpr::var(&dst, 0) + 10, LinExpr::var(&dst, 1)],
        );
        let both = swap.then(&shift);
        let s = Set::parse("[n] -> { [i,j] : i = 1 && j = 2 }").unwrap();
        let image = both.apply(&s);
        // (1,2) → swap (2,1) → shift (12,1)
        assert!(image.contains(&[0], &[12, 1]), "{image}");
    }

    #[test]
    fn identity_and_display() {
        let (src, _) = spaces();
        let id = AffineMap::identity(&src);
        let s = Set::parse("[n] -> { [i,j] : 0 <= i <= 3 && j = i }").unwrap();
        assert!(id.apply(&s).same_set(&s));
        assert_eq!(id.to_string(), "{[i,j] -> [i,j]}");
    }

    #[test]
    fn translation_with_parameter_inverts() {
        let (src, dst) = spaces();
        // (i, j) → (i + n, j - 1)
        let m = AffineMap::new(
            src.clone(),
            dst,
            vec![
                LinExpr::var(&src, 0) + LinExpr::param(&src, 0),
                LinExpr::var(&src, 1) - 1,
            ],
        );
        let inv = m.inverse().expect("translation is unimodular");
        let s = Set::parse("[n] -> { [i,j] : i = 3 && j = 4 }").unwrap();
        let there = m.apply(&s);
        assert!(there.contains(&[5], &[8, 3]));
        let back = inv.apply(&there);
        assert!(back.same_set(&s), "{back}");
    }
}
