//! Projection, over-approximation (`Approximate`), and conjunct
//! simplification — the variable-elimination machinery shared by the
//! higher-level operations.

use crate::conjunct::{Conjunct, Row};
use crate::linexpr::ConstraintKind;
use crate::sat;
use crate::set::Set;

/// Existentially projects out `count` set variables starting at `first`;
/// the space is unchanged and the projected dimensions become unconstrained.
pub(crate) fn project_out(s: &Set, first: usize, count: usize) -> Set {
    assert!(
        first + count <= s.space().n_vars(),
        "projection range out of bounds"
    );
    if count == 0 {
        return s.clone();
    }
    let _span = crate::span!(project, conjuncts = s.conjuncts().len(), count = count);
    let mut out = Set::empty(s.space());
    for c in s.conjuncts() {
        let named = 1 + c.space().n_named();
        let nl = c.n_locals();
        let mut map: Vec<usize> = (0..c.ncols()).collect();
        for (off, v) in (first..first + count).enumerate() {
            map[1 + c.space().n_params() + v] = named + nl + off;
        }
        let remapped = c.remap_columns(c.space(), nl + count, &map);
        let simplified = simplify_conjunct(&remapped);
        if simplified.is_sat() {
            out.push_conjunct(simplified);
        }
    }
    out
}

/// Removes every existential variable by over-approximation: removable
/// locals are eliminated exactly, and remaining local-involving rows
/// (stride/range constraints) are dropped. The result contains the input.
pub(crate) fn approximate(s: &Set) -> Set {
    let _span = crate::span!(approximate, conjuncts = s.conjuncts().len());
    let mut out = Set::empty(s.space());
    for c in s.conjuncts() {
        let mut c = simplify_conjunct(c);
        if !c.is_sat() {
            continue;
        }
        let named = 1 + c.space().n_named();
        // Drop rows still involving locals, then drop the locals.
        c.rows_mut()
            .retain(|r| r.c[named..].iter().all(|&x| x == 0));
        c.compress_locals();
        out.push_conjunct(c);
    }
    out
}

/// Local-free over-approximation by real-shadow Fourier–Motzkin: after
/// exact simplification, every remaining local is eliminated by combining
/// its lower/upper rows (equalities touching it contribute both
/// directions). Congruence information is lost, but inequality bounds that
/// were only implicit through a local (e.g. `∃α: t ≥ 2α+1 ∧ 4α ≥ -t-5`,
/// which implies `t ≥ 3`) become explicit local-free rows. The result
/// always contains the input, so it is sound wherever a superset is — in
/// particular for extracting loop bounds that guards re-tighten.
pub(crate) fn real_shadow(c: &Conjunct) -> Conjunct {
    let mut c = simplify_conjunct(c);
    if c.is_known_false() {
        return c;
    }
    let named = 1 + c.space().n_named();
    loop {
        let nl = c.n_locals();
        let Some(l) = (0..nl).find(|&l| c.rows().iter().any(|r| r.c[named + l] != 0)) else {
            break;
        };
        let col = named + l;
        // FM wants pure inequalities on the eliminated column.
        let mut rows: Vec<Row> = Vec::with_capacity(c.rows().len() + 1);
        for r in c.rows() {
            if r.c[col] != 0 && r.kind == ConstraintKind::Eq {
                rows.push(Row::new(ConstraintKind::Geq, r.c.clone()));
                rows.push(Row::new(
                    ConstraintKind::Geq,
                    r.c.iter().map(|&x| -x).collect::<crate::coeffs::Coeffs>(),
                ));
            } else {
                rows.push(r.clone());
            }
        }
        let lowers = rows.iter().filter(|r| r.c[col] > 0).count();
        let uppers = rows.iter().filter(|r| r.c[col] < 0).count();
        let eliminated = if lowers * uppers <= 64 {
            sat::fm_eliminate(&rows, col, 0).ok()
        } else {
            None
        };
        // Overflow or pair blow-up: dropping the rows outright is coarser
        // but still an over-approximation.
        let new_rows =
            eliminated.unwrap_or_else(|| rows.into_iter().filter(|r| r.c[col] == 0).collect());
        let mut fresh = Vec::new();
        std::mem::swap(c.rows_mut(), &mut fresh);
        for r in new_rows {
            c.push_row(r);
        }
        if c.is_known_false() {
            return c;
        }
    }
    c.compress_locals();
    c.canonicalize();
    c
}

/// Simplifies one conjunct:
///
/// 1. substitutes out locals with unit coefficients in equalities,
/// 2. cancels non-unit locals from all rows but their defining equality
///    (leaving a clean congruence row),
/// 3. exactly eliminates locals that only occur in inequalities when
///    Fourier–Motzkin is integer-exact (or the local is one-side-unbounded),
/// 4. compresses unused locals and canonicalizes congruence rows.
pub(crate) fn simplify_conjunct(c: &Conjunct) -> Conjunct {
    let mut c = c.clone();
    if c.is_known_false() {
        return c;
    }
    loop {
        if c.is_known_false() {
            return c;
        }
        let named = 1 + c.space().n_named();
        let nl = c.n_locals();
        if nl == 0 {
            break;
        }
        let mut changed = false;

        // (1) equality with a unit-coefficient local
        'unit: for ri in 0..c.rows().len() {
            if c.rows()[ri].kind != ConstraintKind::Eq {
                continue;
            }
            for l in 0..nl {
                let col = named + l;
                if c.rows()[ri].c[col].abs() == 1 && substitute_out(&mut c, ri, col) {
                    changed = true;
                    break 'unit;
                }
            }
        }
        if changed {
            continue;
        }

        // (2) Gaussian-style single pass: give each equality at most one
        // non-unit local pivot (all pivots distinct) and cancel that pivot
        // from every other row, leaving a clean congruence. One pass only —
        // re-cancelling endlessly oscillates between locals that share an
        // equality.
        let mut cancelled = false;
        let mut pivoted: Vec<usize> = Vec::new();
        for eqi in 0..c.rows().len() {
            if c.is_known_false() {
                return c;
            }
            if eqi >= c.rows().len() || c.rows()[eqi].kind != ConstraintKind::Eq {
                continue;
            }
            // Pick the local with the smallest |coeff| not yet pivoted.
            let pivot = (0..nl)
                .filter(|&l| !pivoted.contains(&l) && c.rows()[eqi].c[named + l] != 0)
                .min_by_key(|&l| c.rows()[eqi].c[named + l].abs());
            let Some(l) = pivot else { continue };
            let col = named + l;
            let other_rows: Vec<usize> = (0..c.rows().len())
                .filter(|&i| i != eqi && c.rows()[i].c[col] != 0)
                .collect();
            pivoted.push(l);
            if other_rows.is_empty() {
                continue;
            }
            let a = c.rows()[eqi].c[col];
            let eq = c.rows()[eqi].clone();
            let s = if a > 0 { 1 } else { -1 };
            let Some(aa) = a.checked_abs() else { continue };
            for &oi in &other_rows {
                let k = c.rows()[oi].c[col];
                let mut row = c.rows()[oi].clone();
                // row' = |a|·row - k·sign(a)·eq zeroes the local. If any
                // coefficient leaves i64, keep the original row unchanged:
                // the equality stays in the system, so skipping the rewrite
                // preserves the conjunct exactly.
                let fits = k.checked_mul(s).and_then(i64::checked_neg).map(|nks| {
                    (0..row.c.len()).all(|j| {
                        match aa
                            .checked_mul(row.c[j])
                            .and_then(|x| nks.checked_mul(eq.c[j]).and_then(|y| x.checked_add(y)))
                        {
                            Some(v) => {
                                row.c[j] = v;
                                true
                            }
                            None => false,
                        }
                    })
                });
                if fits != Some(true) {
                    continue;
                }
                debug_assert_eq!(row.c[col], 0);
                c.rows_mut()[oi] = row;
            }
            cancelled = true;
        }
        if cancelled {
            // Re-normalize all rows after scaling; do NOT loop back into
            // the cancellation pass off this change alone.
            let rows = std::mem::take(c.rows_mut());
            for r in rows {
                c.push_row(r);
            }
        }

        // (3) locals only in inequalities: exact elimination when possible.
        // Fourier–Motzkin multiplies bound pairs, so skip eliminations that
        // would blow the row count up (keeping the local is always sound).
        for l in 0..nl {
            let col = named + l;
            let lowers = c.rows().iter().filter(|r| r.c[col] > 0).count();
            let uppers = c.rows().iter().filter(|r| r.c[col] < 0).count();
            if lowers + uppers == 0 {
                continue;
            }
            if lowers * uppers > 32 || c.rows().len() + lowers * uppers > 256 {
                continue;
            }
            if let Some(new_rows) = sat::try_exact_eliminate(c.rows(), col) {
                let mut fresh = Vec::new();
                std::mem::swap(c.rows_mut(), &mut fresh);
                for r in new_rows {
                    c.push_row(r);
                }
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }
    c.compress_locals();
    c.canonicalize();
    c
}

/// Substitutes the variable at `col` out of every row using the equality at
/// `eq_idx` (which must have a ±1 coefficient at `col`), then removes the
/// equality row. All-or-nothing: returns `false` and leaves `c` untouched
/// if any substituted coefficient would leave the `i64` range (keeping the
/// equality in place is always sound; the caller just skips this pivot).
fn substitute_out(c: &mut Conjunct, eq_idx: usize, col: usize) -> bool {
    let eq: Row = c.rows()[eq_idx].clone();
    let a = eq.c[col];
    debug_assert_eq!(a.abs(), 1);
    // Visit rows in the order the old in-place swap_remove produced, so the
    // output row order (and thus cache keys downstream) is unchanged.
    let mut order: Vec<usize> = (0..c.rows().len()).collect();
    order.swap_remove(eq_idx);
    let mut new_rows: Vec<Row> = Vec::with_capacity(order.len());
    for &ri in &order {
        let mut r = c.rows()[ri].clone();
        let k = r.c[col];
        if k != 0 {
            r.c[col] = 0;
            for j in 0..r.c.len() {
                if j != col && eq.c[j] != 0 {
                    let Some(v) = k
                        .checked_mul(-a)
                        .and_then(|ka| ka.checked_mul(eq.c[j]))
                        .and_then(|term| r.c[j].checked_add(term))
                    else {
                        return false;
                    };
                    r.c[j] = v;
                }
            }
        }
        new_rows.push(r);
    }
    c.rows_mut().clear();
    for r in new_rows {
        c.push_row(r);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::space::Space;

    fn sp2() -> Space {
        Space::new(&["n"], &["i", "j"])
    }

    #[test]
    fn paper_project_example_simple() {
        // Project({1 <= y <= x <= 100}, x) = {1 <= y <= 100}
        let s = Space::new::<&str>(&[], &["y", "x"]);
        let set = Set::from_constraints(
            &s,
            [
                (LinExpr::var(&s, 0) - 1).geq0(),
                LinExpr::var(&s, 0).leq(LinExpr::var(&s, 1)),
                (LinExpr::constant(&s, 100) - LinExpr::var(&s, 1)).geq0(),
            ],
        );
        let p = set.project_out(1, 1);
        for y in -5..110 {
            assert_eq!(p.contains(&[], &[y, 0]), (1..=100).contains(&y), "y={y}");
        }
        // The projected conjunct must be existential-free.
        assert_eq!(p.conjuncts()[0].n_locals(), 0);
    }

    #[test]
    fn paper_project_example_stride() {
        // Project({1 <= x <= 100 && y = 2x}, x) = {2 <= y <= 200 && ∃a(y = 2a)}
        let s = Space::new::<&str>(&[], &["x", "y"]);
        let set = Set::from_constraints(
            &s,
            [
                (LinExpr::var(&s, 0) - 1).geq0(),
                (LinExpr::constant(&s, 100) - LinExpr::var(&s, 0)).geq0(),
                LinExpr::var(&s, 1).eq(LinExpr::var(&s, 0) * 2),
            ],
        );
        let p = set.project_out(0, 1);
        for y in -5..210 {
            let expect = (2..=200).contains(&y) && y % 2 == 0;
            assert_eq!(p.contains(&[], &[0, y]), expect, "y={y}");
        }
        // A congruence survives in the result.
        assert_eq!(p.conjuncts().len(), 1);
        assert_eq!(p.conjuncts()[0].congruences().len(), 1);
        assert_eq!(p.conjuncts()[0].congruences()[0].1, 2);
    }

    #[test]
    fn project_keeps_space() {
        let s = sp2();
        let set = Set::from_constraints(
            &s,
            [
                LinExpr::var(&s, 0).geq0(),
                LinExpr::var(&s, 1).leq(LinExpr::var(&s, 0)),
            ],
        );
        let p = set.project_out(1, 1);
        assert_eq!(p.space(), &s);
        // j unconstrained now.
        assert!(p.contains(&[0], &[3, -999]));
        assert!(!p.contains(&[0], &[-1, 0]));
    }

    #[test]
    fn approximate_drops_strides() {
        let s = sp2();
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&LinExpr::var(&s, 0).geq0());
        c.add_congruence(&LinExpr::var(&s, 0), 0, 2);
        let a = Set::from_conjunct(c).approximate();
        assert_eq!(a.conjuncts().len(), 1);
        assert_eq!(a.conjuncts()[0].n_locals(), 0);
        // Over-approximation: both parities contained now, but i >= 0 kept.
        assert!(a.contains(&[0], &[1, 0]));
        assert!(!a.contains(&[0], &[-2, 0]));
    }

    #[test]
    fn real_shadow_exposes_implicit_bound() {
        // The seed-784 shape: ∃a: -i - 4a - 5 >= 0 && i + 2a + 1 >= 0 &&
        // -i + 8 >= 0. Exact elimination fails (no unit coefficient on a),
        // but the real shadow derives the implicit lower bound i >= 3.
        let s = sp2();
        let mut c = Conjunct::universe(&s);
        let l = c.add_local();
        let named = 1 + s.n_named();
        let icol = 1 + s.n_params();
        let mut r1 = vec![0i64; named + 1];
        r1[0] = -5;
        r1[icol] = -1;
        r1[named + l] = -4;
        c.push_row(Row::new(ConstraintKind::Geq, r1));
        let mut r2 = vec![0i64; named + 1];
        r2[0] = 1;
        r2[icol] = 1;
        r2[named + l] = 2;
        c.push_row(Row::new(ConstraintKind::Geq, r2));
        let mut r3 = vec![0i64; named + 1];
        r3[0] = 8;
        r3[icol] = -1;
        c.push_row(Row::new(ConstraintKind::Geq, r3));
        assert!(c.bounds_on(0).0.is_empty(), "bound must start implicit");
        let shadow = real_shadow(&c);
        assert_eq!(shadow.n_locals(), 0);
        let (lo, hi) = shadow.bounds_on(0);
        assert!(!lo.is_empty() && !hi.is_empty());
        // Over-approximation containing the input: i in [3, 8].
        for i in -2..12 {
            if c.contains(&[0], &[i, 0]) {
                assert!(shadow.contains(&[0], &[i, 0]), "i={i}");
            }
        }
        assert!(shadow.contains(&[0], &[3, 0]));
        assert!(!shadow.contains(&[0], &[2, 0]));
        assert!(!shadow.contains(&[0], &[9, 0]));
    }

    #[test]
    fn real_shadow_splits_equality() {
        // ∃a: i = 3a && 1 <= a <= 4  →  shadow keeps 3 <= i <= 12 (stride
        // dropped).
        let s = sp2();
        let mut c = Conjunct::universe(&s);
        let l = c.add_local();
        let named = 1 + s.n_named();
        let icol = 1 + s.n_params();
        let mut r1 = vec![0i64; named + 1];
        r1[icol] = 1;
        r1[named + l] = -3;
        c.push_row(Row::new(ConstraintKind::Eq, r1));
        let mut r2 = vec![0i64; named + 1];
        r2[0] = -1;
        r2[named + l] = 1;
        c.push_row(Row::new(ConstraintKind::Geq, r2));
        let mut r3 = vec![0i64; named + 1];
        r3[0] = 4;
        r3[named + l] = -1;
        c.push_row(Row::new(ConstraintKind::Geq, r3));
        let shadow = real_shadow(&c);
        assert_eq!(shadow.n_locals(), 0);
        assert!(shadow.contains(&[0], &[3, 0]));
        assert!(shadow.contains(&[0], &[4, 0])); // stride info gone
        assert!(shadow.contains(&[0], &[12, 0]));
        assert!(!shadow.contains(&[0], &[2, 0]));
        assert!(!shadow.contains(&[0], &[13, 0]));
    }

    #[test]
    fn simplify_eliminates_unit_local() {
        let s = sp2();
        let mut c = Conjunct::universe(&s);
        // ∃a: a = i && a >= 3  ⟺  i >= 3
        let l = c.add_local();
        let named = 1 + s.n_named();
        let mut r1 = vec![0i64; named + 1];
        r1[named + l] = 1;
        r1[1 + s.n_params()] = -1; // a - i = 0
        c.push_row(Row::new(ConstraintKind::Eq, r1));
        let mut r2 = vec![0i64; named + 1];
        r2[0] = -3;
        r2[named + l] = 1; // a - 3 >= 0
        c.push_row(Row::new(ConstraintKind::Geq, r2));
        let simp = simplify_conjunct(&c);
        assert_eq!(simp.n_locals(), 0);
        assert!(simp.contains(&[0], &[3, 0]));
        assert!(!simp.contains(&[0], &[2, 0]));
    }

    #[test]
    fn simplify_projection_equivalence_brute() {
        // For a few random-ish conjuncts, simplification preserves the point set.
        let s = Space::new::<&str>(&[], &["x", "y"]);
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&(LinExpr::var(&s, 0) * 2 + LinExpr::var(&s, 1) - 3).geq0());
        c.add_constraint(&(LinExpr::constant(&s, 20) - LinExpr::var(&s, 0) * 3).geq0());
        c.add_congruence(&(LinExpr::var(&s, 0) + LinExpr::var(&s, 1)), 1, 3);
        let simp = simplify_conjunct(&c);
        for x in -8..8 {
            for y in -8..8 {
                assert_eq!(
                    c.contains(&[], &[x, y]),
                    simp.contains(&[], &[x, y]),
                    "x={x} y={y}"
                );
            }
        }
    }
}
