//! Exact integer satisfiability of conjunctions of affine constraints — the
//! Omega test (Pugh, CACM 1992): equality elimination via the symmetric
//! modulo trick, integer-tightened Fourier–Motzkin elimination, the dark
//! shadow, and splintering when the dark shadow is inconclusive.
//!
//! All functions here operate on raw [`Row`]s whose columns are
//! `[const, x1, .., xn]` with every `xi` existentially quantified.

use crate::cache;
use crate::conjunct::Row;
use crate::faults;
use crate::limits::{self, Limits, OmegaError};
use crate::linexpr::ConstraintKind;
use crate::num;
use crate::stats::bump;
use crate::tier::{self, Verdict};

/// Exact test: does an integer assignment to the `n_vars` variable columns
/// satisfy all rows?
///
/// Queries run through a tiered pipeline (polyhedra scanning asks millions
/// of implication queries, most of them easy):
///
/// * **tier 0** — syntactic contradictions on the canonicalized rows
///   (negated constraint pairs, clashing equalities, single-variable bound
///   conflicts);
/// * **tier 1** — interval-propagation fixpoint: an empty interval proves
///   unsat, and a cheap witness probe inside the box proves sat;
/// * **tier 2** — the exact Omega test, memoized in a process-wide sharded
///   cache so results are shared across scanning worker threads.
///
/// Tiers 0 and 1 are exact when they answer; only `Unknown` falls through,
/// so the overall verdict always equals the plain Omega test's.
///
/// Tier 2 runs under the current [`crate::limits::Limits`] governor: when
/// a limit trips (budget, depth, row cap, deadline, or coefficient
/// overflow) the query degrades to the conservative "satisfiable", the
/// reason is noted in the scope's [`crate::limits::DegradeReasons`], and
/// the verdict is *not* cached — only exact verdicts (valid under any
/// limits) enter the process-wide memo cache.
pub(crate) fn rows_satisfiable(rows: &[Row], n_vars: usize) -> bool {
    // Fast path: rows coming from canonicalized conjuncts are already
    // normalized, so tier 0 and the cache probe can run on the borrowed
    // rows without cloning anything. Only a cache miss (or an unnormalized
    // row) pays for building the canonical system.
    //
    // The scan is fused: one walk over each row's coefficients checks for
    // constant rows (gcd over the variable columns stays 0), verifies
    // normality (gcd 1), and accumulates the cache fingerprint lanes — so
    // the warm path touches every coefficient exactly once before the
    // cache probe instead of three times (constant scan, gcd scan, hash).
    let mut s1: u64 = 0;
    let mut s2: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut n: u64 = 0;
    let mut normal = true;
    for r in rows {
        debug_assert_eq!(r.c.len(), 1 + n_vars);
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325 ^ (r.kind as u64);
        let mut h2: u64 = 0x517c_c1b7_2722_0a95 ^ (r.kind as u64).rotate_left(32);
        let mut it = r.c.iter();
        let &c0 = it.next().expect("row has a constant column");
        h1 = (h1 ^ c0 as u64).wrapping_mul(0x100_0000_01b3);
        h2 = (h2.rotate_left(29) ^ (c0 as u64).wrapping_mul(0xff51_afd7_ed55_8ccd))
            .wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        let mut g = 0;
        for &x in it {
            if g != 1 {
                g = num::gcd(g, x);
            }
            h1 = (h1 ^ x as u64).wrapping_mul(0x100_0000_01b3);
            h2 = (h2.rotate_left(29) ^ (x as u64).wrapping_mul(0xff51_afd7_ed55_8ccd))
                .wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        }
        if g == 0 {
            // All variable coefficients are zero: a constant row. Decided
            // here and excluded from the fingerprint (matching `cache_key`).
            if !r.constant_truth() {
                return false;
            }
            continue;
        }
        if g != 1 {
            normal = false;
            break;
        }
        s1 = s1.wrapping_add(splitmix(h1));
        s2 = s2.wrapping_add(splitmix(h2 ^ 0x94d0_49bb_1331_11eb));
        n += 1;
    }
    if normal {
        if n == 0 {
            return true; // every row was a (true) constant
        }
        let key = (splitmix(s1 ^ n), splitmix(s2.wrapping_add(n)));
        debug_assert_eq!(key, cache_key(rows));
        return satisfiable_with_key(rows, n_vars, key);
    }
    let mut work: Vec<Row> = Vec::with_capacity(rows.len());
    for r in rows {
        let mut r = r.clone();
        if !r.normalize() {
            return false;
        }
        if r.is_constant() {
            if !r.constant_truth() {
                return false;
            }
            continue;
        }
        work.push(r);
    }
    satisfiable_normalized(&work, n_vars)
}

/// Pipeline behind the normalization check: `rows` are normalized but may
/// still contain (true) constant rows and duplicates, in any order.
fn satisfiable_normalized(rows: &[Row], n_vars: usize) -> bool {
    if rows.iter().all(|r| r.is_constant()) {
        return true;
    }
    satisfiable_with_key(rows, n_vars, cache_key(rows))
}

/// The tiered pipeline proper, entered with the system's fingerprint
/// already in hand (computed during the caller's coefficient scan).
fn satisfiable_with_key(rows: &[Row], n_vars: usize, key: (u64, u64)) -> bool {
    let span = crate::span!(sat_query, rows = rows.len(), vars = n_vars);
    // The cache sits *before* tiers 0 and 1 and stores their verdicts too:
    // on the warm path (scanning re-asks the same queries constantly) a
    // repeat query costs one fingerprint + shard probe — cheaper than even
    // tier 0's pairwise scan.
    if let Some(hit) = cache::SAT.lookup(key) {
        bump!(cache_hits);
        span.attr("tier", "cache");
        span.attr("sat", hit);
        return hit;
    }
    bump!(cache_misses);
    if tier::tier0(rows) == Verdict::Unsat {
        bump!(tier0_unsat);
        cache::SAT.insert(key, false);
        span.attr("tier", "tier0");
        span.attr("sat", false);
        return false;
    }
    // Miss: build the canonical (sorted, deduplicated) system. Determinism
    // across thread counts requires the *solver input* to be a pure
    // function of the fingerprinted multiset — the solver's budget cutoff
    // is order-sensitive even though exact verdicts are not.
    let mut work: Vec<Row> = rows.iter().filter(|r| !r.is_constant()).cloned().collect();
    work.sort_by(|a, b| (a.kind as u8, &a.c).cmp(&(b.kind as u8, &b.c)));
    work.dedup();
    let result = match tier::tier1(&work, 1 + n_vars) {
        Verdict::Unsat => {
            bump!(tier1_unsat);
            span.attr("tier", "tier1");
            span.attr("sat", false);
            false
        }
        Verdict::Sat => {
            bump!(tier1_sat);
            span.attr("tier", "tier1");
            span.attr("sat", true);
            true
        }
        Verdict::Unknown => 'tier2: {
            // Warm persistent tier: an exact verdict computed by a prior
            // process. Probed only past tiers 0/1 (so the on-disk log
            // holds only queries that were worth an exact solve), keyed
            // by the canonical cross-process hash — the in-memory `key`
            // counts duplicate rows and is not canonical. A hit is exact
            // by the no-poisoning-on-disk invariant, so it is promoted
            // into the hot cache by the shared insert below.
            let persist_key =
                crate::persist::enabled().then(|| crate::persist::canonical_rows_key(&work));
            if let Some(hit) = persist_key.and_then(crate::persist::sat_lookup) {
                span.attr("tier", "persist");
                span.attr("sat", hit);
                break 'tier2 hit;
            }
            // Tier 2: the exact Omega test. The per-query call tree is a
            // *detached* trace root keyed by the cache fingerprint —
            // which thread or phase happens to ask a cold query first is
            // scheduling-dependent, the query itself is not.
            let exact = crate::root_span!(sat_exact, rows = work.len(), vars = n_vars);
            exact.attr("key", format!("{:016x}{:016x}", key.0, key.1));
            let dump = crate::trace::current().filter(|c| c.wants_dumps());
            let dump_rows = dump.as_ref().map(|_| work.clone());
            faults::begin_query();
            let lim = limits::current();
            let mut budget = lim.budget;
            match solve(work, 0, &mut budget, &lim) {
                Ok(v) => {
                    exact.attr("sat", v);
                    // Exact verdict: queue it for the durable tier under
                    // the same canonical key the warm probe used. The
                    // Err arm below records nothing — degraded verdicts
                    // never reach disk (no-poisoning-on-disk).
                    if let Some(pk) = persist_key {
                        crate::persist::sat_record(pk, v);
                    }
                    if let Some(c) = &dump {
                        let text = crate::provenance::sat_dump_text(
                            dump_rows.as_deref().unwrap_or(&[]),
                            n_vars,
                            Some(v),
                        );
                        c.submit_dump("sat", text);
                    }
                    span.attr("tier", "tier2");
                    span.attr("sat", v);
                    v
                }
                Err(e) => {
                    // Degraded verdict: answer the conservative "sat",
                    // record why, and — critically — do NOT cache it. Exact
                    // verdicts are exact under any limits and always safe
                    // to share; a starved verdict must not be replayed to a
                    // later caller running with a fresh budget.
                    exact.attr("degraded", format!("{e}"));
                    if let Some(c) = &dump {
                        let text = crate::provenance::sat_dump_text(
                            dump_rows.as_deref().unwrap_or(&[]),
                            n_vars,
                            None,
                        );
                        c.submit_dump("sat", text);
                    }
                    limits::note(e);
                    bump!(sat_degraded);
                    span.attr("tier", "tier2");
                    span.attr("sat", true);
                    span.attr("degraded", true);
                    return true;
                }
            }
        }
    };
    cache::SAT.insert(key, result);
    result
}

/// Test-only reference oracle: the exact Omega test with the cache and the
/// fast tiers bypassed, for differential testing of the tiers themselves.
#[cfg(test)]
pub(crate) fn exact_satisfiable(rows: &[Row], n_vars: usize) -> bool {
    let mut work: Vec<Row> = Vec::with_capacity(rows.len());
    for r in rows {
        let mut r = r.clone();
        if !r.normalize() {
            return false;
        }
        if r.is_constant() {
            if !r.constant_truth() {
                return false;
            }
            continue;
        }
        work.push(r);
    }
    debug_assert!(work.iter().all(|r| r.c.len() == 1 + n_vars));
    work.sort_by(|a, b| (a.kind as u8, &a.c).cmp(&(b.kind as u8, &b.c)));
    work.dedup();
    let lim = Limits::default();
    let mut budget = lim.budget;
    solve(work, 0, &mut budget, &lim).unwrap_or(true)
}

/// A 128-bit fingerprint of the row system: a commutative (wrapping-sum)
/// combination of well-mixed per-row hashes, so logically identical
/// queries fingerprint identically *regardless of row order* and no sorted
/// copy is needed on the lookup path. Constant rows are skipped to keep
/// the key canonical. Collision odds are negligible at the cache's
/// capacity.
fn cache_key(rows: &[Row]) -> (u64, u64) {
    let mut s1: u64 = 0;
    let mut s2: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut n: u64 = 0;
    for r in rows {
        if r.is_constant() {
            continue;
        }
        let mut h1: u64 = 0xcbf2_9ce4_8422_2325 ^ (r.kind as u64);
        let mut h2: u64 = 0x517c_c1b7_2722_0a95 ^ (r.kind as u64).rotate_left(32);
        for &x in &r.c {
            h1 = (h1 ^ x as u64).wrapping_mul(0x100_0000_01b3);
            h2 = (h2.rotate_left(29) ^ (x as u64).wrapping_mul(0xff51_afd7_ed55_8ccd))
                .wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        }
        s1 = s1.wrapping_add(splitmix(h1));
        s2 = s2.wrapping_add(splitmix(h2 ^ 0x94d0_49bb_1331_11eb));
        n += 1;
    }
    (splitmix(s1 ^ n), splitmix(s2.wrapping_add(n)))
}

/// Final avalanche (splitmix64), so structured coefficient patterns do not
/// collide under the commutative sum.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The exact Omega test under a [`Limits`] governor. Every limit trip and
/// every arithmetic overflow surfaces as a structured [`OmegaError`];
/// `satisfiable_normalized` catches it at the query boundary and degrades
/// to the conservative "satisfiable" — sound for every caller in this
/// crate (emptiness pruning keeps more pieces; implication checks keep
/// more constraints — the generated code is merely more conservative,
/// never wrong).
fn solve(
    mut rows: Vec<Row>,
    depth: usize,
    budget: &mut u64,
    lim: &Limits,
) -> Result<bool, OmegaError> {
    if depth >= lim.max_depth {
        return Err(OmegaError::DepthExceeded);
    }
    loop {
        lim.check_deadline()?;
        faults::tick()?;
        if rows.len() > lim.row_cap {
            return Err(OmegaError::RowCapExceeded);
        }
        if *budget < rows.len() as u64 {
            *budget = 0;
            return Err(OmegaError::BudgetExhausted);
        }
        *budget -= rows.len() as u64;
        match normalize_all(&mut rows) {
            Normalized::Contradiction => return Ok(false),
            Normalized::Ok => {}
        }
        if rows.is_empty() {
            return Ok(true);
        }
        // Step 1: eliminate an equality if one exists.
        if let Some(eq_idx) = rows.iter().position(|r| r.kind == ConstraintKind::Eq) {
            if !eliminate_equality(&mut rows, eq_idx)? {
                return Ok(false);
            }
            continue;
        }
        // Step 2: inequalities only.
        return fm_solve(rows, depth, budget, lim);
    }
}

enum Normalized {
    Ok,
    Contradiction,
}

fn normalize_all(rows: &mut Vec<Row>) -> Normalized {
    let mut i = 0;
    while i < rows.len() {
        if !rows[i].normalize() {
            return Normalized::Contradiction;
        }
        if rows[i].is_constant() {
            if !rows[i].constant_truth() {
                return Normalized::Contradiction;
            }
            rows.swap_remove(i);
        } else {
            i += 1;
        }
    }
    Normalized::Ok
}

/// Eliminates the equality at `eq_idx`. Returns `Ok(false)` on detected
/// unsatisfiability.
fn eliminate_equality(rows: &mut Vec<Row>, eq_idx: usize) -> Result<bool, OmegaError> {
    let eq = rows[eq_idx].clone();
    // Choose the variable with minimal |coefficient|.
    let mut best: Option<(usize, i64)> = None;
    for (j, &c) in eq.c.iter().enumerate().skip(1) {
        if c != 0 && best.is_none_or(|(_, b)| c.abs() < b.abs()) {
            best = Some((j, c));
        }
    }
    let (col, coeff) = match best {
        Some(b) => b,
        None => {
            // Constant equality; normalize_all should have caught it.
            return Ok(eq.constant_truth());
        }
    };
    if coeff.abs() == 1 {
        substitute_from_equality(rows, eq_idx, col)?;
        return Ok(true);
    }
    // Pugh's symmetric-modulo reduction: introduce a fresh variable sigma.
    let m = num::try_add(coeff.abs(), 1)?;
    for r in rows.iter_mut() {
        r.c.push(0);
    }
    let mut c: crate::coeffs::Coeffs = eq.c.iter().map(|&x| num::mod_hat(x, m)).collect();
    c.push(-m); // -m * sigma
    debug_assert_eq!(c[col].abs(), 1, "mod-hat must give unit coefficient");
    rows.push(Row::new(ConstraintKind::Eq, c));
    let new_idx = rows.len() - 1;
    substitute_from_equality(rows, new_idx, col)?;
    Ok(true)
}

/// Uses the equality row at `eq_idx` (which must have coefficient ±1 at
/// `col`) to substitute the variable out of every other row, then removes
/// the equality.
fn substitute_from_equality(
    rows: &mut Vec<Row>,
    eq_idx: usize,
    col: usize,
) -> Result<(), OmegaError> {
    let eq = rows.swap_remove(eq_idx);
    let a = eq.c[col];
    debug_assert_eq!(a.abs(), 1);
    // a*x + e = 0  =>  x = -e/a = -a*e   (since a = ±1)
    for r in rows.iter_mut() {
        let k = r.c[col];
        if k == 0 {
            continue;
        }
        r.c[col] = 0;
        for j in 0..r.c.len() {
            if j != col && eq.c[j] != 0 {
                r.c[j] = num::try_add(r.c[j], num::try_mul(k, num::try_mul(-a, eq.c[j])?)?)?;
            }
        }
    }
    Ok(())
}

/// Bounds on a variable within a pure-inequality system.
struct VarBounds {
    /// Rows `a·x + e ≥ 0` with `a > 0` (lower bounds), as (row index, a).
    lowers: Vec<(usize, i64)>,
    /// Rows `-b·x + e ≥ 0` with `b > 0` (upper bounds), as (row index, b).
    uppers: Vec<(usize, i64)>,
}

fn bounds_for(rows: &[Row], col: usize) -> VarBounds {
    let mut vb = VarBounds {
        lowers: Vec::new(),
        uppers: Vec::new(),
    };
    for (i, r) in rows.iter().enumerate() {
        let c = r.c[col];
        if c > 0 {
            vb.lowers.push((i, c));
        } else if c < 0 {
            vb.uppers.push((i, -c));
        }
    }
    vb
}

/// Solves a system of inequalities (no equalities) exactly.
fn fm_solve(
    mut rows: Vec<Row>,
    depth: usize,
    budget: &mut u64,
    lim: &Limits,
) -> Result<bool, OmegaError> {
    loop {
        lim.check_deadline()?;
        faults::tick()?;
        if rows.len() > lim.row_cap {
            return Err(OmegaError::RowCapExceeded);
        }
        if *budget < rows.len() as u64 {
            *budget = 0;
            return Err(OmegaError::BudgetExhausted);
        }
        *budget -= rows.len() as u64;
        match normalize_all(&mut rows) {
            Normalized::Contradiction => return Ok(false),
            Normalized::Ok => {}
        }
        if rows.is_empty() {
            return Ok(true);
        }
        let ncols = rows[0].c.len();
        // Find a used variable, preferring one whose elimination is exact.
        let mut candidate: Option<usize> = None;
        let mut exact: Option<usize> = None;
        let mut best_combo = usize::MAX;
        let mut dropped_unbounded = false;
        for col in 1..ncols {
            let vb = bounds_for(&rows, col);
            if vb.lowers.is_empty() && vb.uppers.is_empty() {
                continue;
            }
            if vb.lowers.is_empty() || vb.uppers.is_empty() {
                // Unbounded on one side: variable (and its rows) can go away.
                rows.retain(|r| r.c[col] == 0);
                dropped_unbounded = true;
                break;
            }
            let unit_lower = vb.lowers.iter().all(|&(_, a)| a == 1);
            let unit_upper = vb.uppers.iter().all(|&(_, b)| b == 1);
            let combos = vb.lowers.len() * vb.uppers.len();
            if unit_lower || unit_upper {
                if exact.is_none() || combos < best_combo {
                    exact = Some(col);
                    best_combo = combos;
                }
            } else if exact.is_none() && combos < best_combo {
                candidate = Some(col);
                best_combo = combos;
            }
        }
        if dropped_unbounded {
            continue;
        }
        if let Some(col) = exact {
            rows = fm_eliminate(&rows, col, 0)?;
            continue;
        }
        let col = match candidate {
            Some(c) => c,
            None => return Ok(true), // no variables used; rows were constant
        };
        // Inexact variable: dark shadow first (a satisfiable dark shadow
        // proves satisfiability), then the real shadow, then splinters.
        let dark = fm_eliminate(&rows, col, 1)?;
        if solve(dark, depth + 1, budget, lim)? {
            return Ok(true); // dark shadow guarantees an integer point
        }
        let real = fm_eliminate(&rows, col, 0)?;
        if !solve(real, depth + 1, budget, lim)? {
            return Ok(false); // even the rational relaxation is empty
        }
        // Splinter: if a solution exists outside the dark shadow then for
        // some lower bound a·x + e ≥ 0 we have a·x = -e + i with
        // 0 ≤ i ≤ (a·b_max - a - b_max)/b_max.
        let vb = bounds_for(&rows, col);
        let b_max = vb.uppers.iter().map(|&(_, b)| b).max().unwrap_or(1);
        let mut branches: Vec<Vec<Row>> = Vec::new();
        let mut materialized = true;
        'mat: for &(li, a) in &vb.lowers {
            let spread = num::try_sub(num::try_sub(num::try_mul(a, b_max)?, a)?, b_max)?;
            let max_i = num::floor_div(spread, b_max);
            for i in 0..=max_i {
                if branches.len() >= MAX_EAGER_SPLINTERS {
                    // Pathologically wide splinter fan: stay lazy (and
                    // sequential) so an early satisfiable branch avoids
                    // materializing the rest. The cutoff depends only on
                    // the system, never on the thread budget.
                    branches.clear();
                    materialized = false;
                    break 'mat;
                }
                let mut sys = rows.clone();
                let mut c = rows[li].c.clone();
                c[0] = num::try_add(c[0], -i)?;
                sys.push(Row::new(ConstraintKind::Eq, c));
                branches.push(sys);
            }
        }
        if !materialized || faults::is_armed() {
            // Lazy fallback, shared budget — the seed's behavior. Also
            // taken under fault injection: the per-query fault counter is
            // thread-local, so splitting one query's branches across
            // workers would change which operation each branch counts.
            for &(li, a) in &vb.lowers {
                let spread = num::try_sub(num::try_sub(num::try_mul(a, b_max)?, a)?, b_max)?;
                let max_i = num::floor_div(spread, b_max);
                for i in 0..=max_i {
                    let mut sys = rows.clone();
                    let mut c = rows[li].c.clone();
                    c[0] = num::try_add(c[0], -i)?;
                    sys.push(Row::new(ConstraintKind::Eq, c));
                    if solve(sys, depth + 1, budget, lim)? {
                        return Ok(true);
                    }
                }
            }
            return Ok(false);
        }
        if branches.is_empty() {
            return Ok(false);
        }
        // Independent sub-solves with *deterministic per-branch budget
        // slices*: each branch owns remaining/n of the budget whether it
        // runs on this thread or a worker, and the join consumes results
        // in branch order — first satisfiable branch wins, an error in an
        // earlier branch preempts later results, and budget spent by
        // branches after the deciding one is not charged. Verdict,
        // degradations, and final budget are therefore identical at every
        // thread count (including 1).
        let slice = *budget / branches.len() as u64;
        let results = crate::par::map_ordered(branches, |sys| {
            let mut b = slice;
            let r = solve(sys, depth + 1, &mut b, lim);
            (r, slice - b)
        });
        let mut used = 0u64;
        let mut verdict = Ok(false);
        for (r, u) in results {
            used = used.saturating_add(u);
            match r {
                Ok(true) => {
                    verdict = Ok(true);
                    break;
                }
                Ok(false) => {}
                Err(e) => {
                    verdict = Err(e);
                    break;
                }
            }
        }
        *budget -= used.min(*budget);
        return verdict;
    }
}

/// Splinter fan-outs wider than this are solved lazily (one branch at a
/// time, sequentially) instead of being materialized for the task pool.
const MAX_EAGER_SPLINTERS: usize = 64;

/// Fourier–Motzkin elimination of `col` from a pure-inequality system.
/// `slack = 0` gives the real shadow (exact when a unit coefficient is
/// involved); `slack = 1` gives the dark shadow (subtracting
/// `(a-1)(b-1)` from each combination). Coefficient products that leave
/// the `i64` range surface as [`OmegaError::Overflow`] instead of
/// panicking — FM squares coefficient magnitudes, so this is the solver's
/// most overflow-prone step.
pub(crate) fn fm_eliminate(rows: &[Row], col: usize, slack: i64) -> Result<Vec<Row>, OmegaError> {
    let _span = crate::span!(fm_eliminate, rows = rows.len(), col = col, slack = slack);
    let mut out: Vec<Row> = Vec::new();
    let mut lowers: Vec<&Row> = Vec::new();
    let mut uppers: Vec<&Row> = Vec::new();
    for r in rows {
        let c = r.c[col];
        if c == 0 {
            // Rows (of any kind) not involving the column pass through.
            out.push(r.clone());
            continue;
        }
        debug_assert_eq!(
            r.kind,
            ConstraintKind::Geq,
            "fm_eliminate expects inequalities on the eliminated column"
        );
        if c > 0 {
            lowers.push(r);
        } else {
            uppers.push(r);
        }
    }
    for lo in &lowers {
        let a = lo.c[col];
        for up in &uppers {
            let b = -up.c[col];
            // b*(a x + e_l) + a*(-b x + e_u) ≥ 0  →  b e_l + a e_u ≥ 0
            let mut c = crate::coeffs::Coeffs::zeros(lo.c.len());
            for (j, (&l, &u)) in lo.c.iter().zip(&up.c).enumerate() {
                c[j] = num::try_add(num::try_mul(b, l)?, num::try_mul(a, u)?)?;
            }
            c[col] = 0;
            if slack != 0 {
                let d = num::try_mul(slack, num::try_mul(a - 1, b - 1)?)?;
                c[0] = num::try_sub(c[0], d)?;
            }
            out.push(Row::new(ConstraintKind::Geq, c));
        }
    }
    Ok(out)
}

/// Exact elimination of an inequality-only column when possible: returns
/// `Some(rows)` when all lower-bound or all upper-bound coefficients on
/// `col` are 1 (so plain FM is integer-exact), or when the column is
/// unbounded on one side (rows mentioning it are dropped). Equalities
/// mentioning `col` — or coefficient overflow during elimination — make
/// this return `None` (callers keep the column, which is always sound).
pub(crate) fn try_exact_eliminate(rows: &[Row], col: usize) -> Option<Vec<Row>> {
    let mut lowers: Vec<i64> = Vec::new();
    let mut uppers: Vec<i64> = Vec::new();
    for r in rows {
        let c = r.c[col];
        if c == 0 {
            continue;
        }
        if r.kind == ConstraintKind::Eq {
            return None;
        }
        if c > 0 {
            lowers.push(c);
        } else {
            uppers.push(-c);
        }
    }
    if lowers.is_empty() && uppers.is_empty() {
        return Some(rows.to_vec());
    }
    if lowers.is_empty() || uppers.is_empty() {
        return Some(rows.iter().filter(|r| r.c[col] == 0).cloned().collect());
    }
    let unit_lower = lowers.iter().all(|&a| a == 1);
    let unit_upper = uppers.iter().all(|&b| b == 1);
    if unit_lower || unit_upper {
        fm_eliminate(rows, col, 0).ok()
    } else {
        None
    }
}

/// The strict negation of a `Geq` row, `¬(w·x + c ≥ 0) = -w·x - c - 1 ≥ 0`,
/// or `None` when negation itself would overflow (callers then treat the
/// implication test as undecided, which is always sound).
pub(crate) fn negate_geq(c: &[i64]) -> Option<Vec<i64>> {
    let mut neg: Vec<i64> = Vec::with_capacity(c.len());
    for &x in c {
        neg.push(x.checked_neg()?);
    }
    neg[0] = neg[0].checked_sub(1)?;
    Some(neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geq(c: &[i64]) -> Row {
        Row::new(ConstraintKind::Geq, c.to_vec())
    }
    fn eq(c: &[i64]) -> Row {
        Row::new(ConstraintKind::Eq, c.to_vec())
    }

    // Columns: [const, x, y] unless stated otherwise.

    #[test]
    fn trivial_systems() {
        assert!(rows_satisfiable(&[], 0));
        assert!(rows_satisfiable(&[geq(&[5])], 0));
        assert!(!rows_satisfiable(&[geq(&[-1])], 0));
        assert!(!rows_satisfiable(&[eq(&[3])], 0));
    }

    #[test]
    fn simple_bounds() {
        // 0 <= x <= 10
        assert!(rows_satisfiable(&[geq(&[0, 1]), geq(&[10, -1])], 1));
        // 5 <= x <= 3  — empty
        assert!(!rows_satisfiable(&[geq(&[-5, 1]), geq(&[3, -1])], 1));
        // x <= 3 && x >= 3 — single point
        assert!(rows_satisfiable(&[geq(&[-3, 1]), geq(&[3, -1])], 1));
    }

    #[test]
    fn rational_but_not_integer() {
        // 2x = 1
        assert!(!rows_satisfiable(&[eq(&[-1, 2])], 1));
        // 2 <= 2x <= 3 has rational solutions (1..1.5) and integer x=1.
        assert!(rows_satisfiable(&[geq(&[-2, 2]), geq(&[3, -2])], 1));
        // 3 <= 2x <= 3: only x=1.5 — no integer point.
        assert!(!rows_satisfiable(&[geq(&[-3, 2]), geq(&[3, -2])], 1));
    }

    #[test]
    fn dark_shadow_needed() {
        // Pugh's classic Omega-test example: 27 <= 11x + 13y <= 45 and
        // -10 <= 7x - 9y <= 4 has rational solutions but NO integer ones —
        // proving it requires going beyond the real shadow.
        let rows = vec![
            geq(&[-27, 11, 13]),
            geq(&[45, -11, -13]),
            geq(&[10, 7, -9]),
            geq(&[4, -7, 9]),
        ];
        assert!(!rows_satisfiable(&rows, 2));
        // Relaxing the second pair makes x=2, y=1 feasible (11*2+13=35,
        // 7*2-9=5 ∈ [-10, 8]).
        let rows = vec![
            geq(&[-27, 11, 13]),
            geq(&[45, -11, -13]),
            geq(&[10, 7, -9]),
            geq(&[8, -7, 9]),
        ];
        assert!(rows_satisfiable(&rows, 2));
    }

    #[test]
    fn splinter_needed_unsat() {
        // 3 | x (via equality with wildcard is elsewhere); here a known
        // integer-gap case: 2x >= 1 && 2x <= 1 is x = 0.5 only.
        assert!(!rows_satisfiable(&[geq(&[-1, 2]), geq(&[1, -2])], 1));
        // 6 <= 3x <= 7 && 4 <= 2x <= 5: x in [2,7/3] ∩ [2,2.5] → x=2 ✓
        assert!(rows_satisfiable(
            &[geq(&[-6, 3]), geq(&[7, -3]), geq(&[-4, 2]), geq(&[5, -2])],
            1
        ));
        // 7 <= 3x <= 8 (x in [7/3, 8/3]) — no integer
        assert!(!rows_satisfiable(&[geq(&[-7, 3]), geq(&[8, -3])], 1));
    }

    #[test]
    fn equality_with_nonunit_coefficients() {
        // 3x + 5y = 1 has integer solutions (x=2, y=-1)
        assert!(rows_satisfiable(&[eq(&[-1, 3, 5])], 2));
        // 6x + 9y = 1: gcd 3 does not divide 1 — unsat
        assert!(!rows_satisfiable(&[eq(&[-1, 6, 9])], 2));
        // 6x + 9y = 3 — sat
        assert!(rows_satisfiable(&[eq(&[-3, 6, 9])], 2));
    }

    #[test]
    fn equality_plus_bounds() {
        // y = 2x && 1 <= x <= 100 && y = 7 → 7 = 2x unsat
        let rows = vec![
            eq(&[0, 2, -1]),    // 2x - y = 0
            geq(&[-1, 1, 0]),   // x >= 1
            geq(&[100, -1, 0]), // x <= 100
            eq(&[-7, 0, 1]),    // y = 7
        ];
        assert!(!rows_satisfiable(&rows, 2));
        // y = 8 instead → x = 4 ✓
        let rows = vec![
            eq(&[0, 2, -1]),
            geq(&[-1, 1, 0]),
            geq(&[100, -1, 0]),
            eq(&[-8, 0, 1]),
        ];
        assert!(rows_satisfiable(&rows, 2));
    }

    #[test]
    fn unbounded_variable_dropped() {
        // x >= 5 (no upper) && y = 3
        assert!(rows_satisfiable(&[geq(&[-5, 1, 0]), eq(&[-3, 0, 1])], 2));
    }

    #[test]
    fn three_variable_mixed() {
        // x + y + z = 10, x >= y, y >= z, z >= 0, x <= 4 → x≥⌈10/3⌉=4 → x=4,
        // y+z=6, 4>=y>=z>=0 → y=3..4 fine (y=3,z=3) ✓
        let rows = vec![
            eq(&[-10, 1, 1, 1]),
            geq(&[0, 1, -1, 0]),
            geq(&[0, 0, 1, -1]),
            geq(&[0, 0, 0, 1]),
            geq(&[4, -1, 0, 0]),
        ];
        assert!(rows_satisfiable(&rows, 3));
        // tighten x <= 3 → x+y+z <= 9 < 10 → unsat
        let rows = vec![
            eq(&[-10, 1, 1, 1]),
            geq(&[0, 1, -1, 0]),
            geq(&[0, 0, 1, -1]),
            geq(&[0, 0, 0, 1]),
            geq(&[3, -1, 0, 0]),
        ];
        assert!(!rows_satisfiable(&rows, 3));
    }

    #[test]
    fn stride_intersection_empty() {
        // x = 2a (even), x = 2b + 1 (odd): columns [const, x, a, b]
        let rows = vec![eq(&[0, 1, -2, 0]), eq(&[-1, 1, 0, -2])];
        assert!(!rows_satisfiable(&rows, 3));
        // even ∧ multiple of 3 → multiples of 6 exist
        let rows = vec![eq(&[0, 1, -2, 0]), eq(&[0, 1, 0, -3])];
        assert!(rows_satisfiable(&rows, 3));
    }

    #[test]
    fn stride_with_window() {
        // x even, 3 <= x <= 3 → x=3 odd → unsat
        let rows = vec![eq(&[0, 1, -2]), geq(&[-3, 1, 0]), geq(&[3, -1, 0])];
        assert!(!rows_satisfiable(&rows, 2));
        // x even, 3 <= x <= 4 → x=4 ✓
        let rows = vec![eq(&[0, 1, -2]), geq(&[-3, 1, 0]), geq(&[4, -1, 0])];
        assert!(rows_satisfiable(&rows, 2));
        // x ≡ 1 mod 4 within [2, 4] → none (candidates 1, 5)
        let rows = vec![eq(&[-1, 1, -4]), geq(&[-2, 1, 0]), geq(&[4, -1, 0])];
        assert!(!rows_satisfiable(&rows, 2));
    }

    #[test]
    fn brute_force_agreement_two_vars() {
        // Random-ish small systems: compare against brute force over a box.
        let cases: Vec<Vec<Row>> = vec![
            vec![
                geq(&[-1, 2, 3]),
                geq(&[7, -1, -2]),
                geq(&[0, 1, 0]),
                geq(&[0, 0, 1]),
            ],
            vec![
                geq(&[-5, 3, -2]),
                geq(&[5, -3, 2]),
                geq(&[8, -1, -1]),
                geq(&[0, 1, 1]),
            ],
            vec![eq(&[-4, 2, 2]), geq(&[0, 1, -1])],
            vec![
                geq(&[-9, 5, 0]),
                geq(&[9, -5, 0]),
                geq(&[-2, 0, 3]),
                geq(&[2, 0, -3]),
            ],
        ];
        for rows in cases {
            let mut brute = false;
            'outer: for x in -30..=30 {
                for y in -30..=30 {
                    if rows.iter().all(|r| {
                        let v = r.c[0] + r.c[1] * x + r.c[2] * y;
                        match r.kind {
                            ConstraintKind::Eq => v == 0,
                            ConstraintKind::Geq => v >= 0,
                        }
                    }) {
                        brute = true;
                        break 'outer;
                    }
                }
            }
            // The box is wide enough for these coefficient magnitudes that a
            // solution, if any, appears inside it.
            assert_eq!(rows_satisfiable(&rows, 2), brute, "rows: {rows:?}");
        }
    }

    #[test]
    fn try_exact_eliminate_cases() {
        // unit lower: x >= 0, 2x <= 9, y = x rows... keep it inequality-only
        let rows = vec![geq(&[0, 1, 0]), geq(&[9, -2, 0]), geq(&[5, 0, -1])];
        let out = try_exact_eliminate(&rows, 1).expect("exact");
        // Eliminating x leaves only the y constraint plus the combination 9 - 2*0 >= 0.
        assert!(out.iter().all(|r| r.c[1] == 0));
        // non-unit on both sides → None
        let rows = vec![geq(&[0, 2, 0]), geq(&[9, -3, 0])];
        assert!(try_exact_eliminate(&rows, 1).is_none());
        // equality mentioning col → None
        let rows = vec![eq(&[0, 1, -2])];
        assert!(try_exact_eliminate(&rows, 1).is_none());
    }
}
