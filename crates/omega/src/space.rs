//! Variable spaces: the named parameters and set variables a [`crate::Set`]
//! is defined over.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide intern table: structurally equal spaces constructed through
/// [`Space::new`] share one `Arc`, so the `Arc::ptr_eq` shortcut in
/// `PartialEq` fires on (nearly) every comparison and repeated
/// constructions of the same space allocate nothing. Capped so adversarial
/// workloads with unbounded distinct name sets cannot grow it forever —
/// past the cap, spaces are simply not interned (still correct, just not
/// pointer-shared).
type InternMap = HashMap<(Vec<String>, Vec<String>), Arc<SpaceInner>>;
static INTERN: OnceLock<Mutex<InternMap>> = OnceLock::new();

const INTERN_CAP: usize = 4096;

/// The space of a Presburger set: a list of symbolic parameters (free
/// constants such as `n`) followed by the set variables (loop dimensions,
/// scanned first-to-last in lexicographic order).
///
/// Spaces are cheap to clone (`Arc` internally) and compared structurally.
///
/// # Examples
///
/// ```
/// use omega::Space;
/// let sp = Space::new(&["n"], &["i", "j"]);
/// assert_eq!(sp.n_params(), 1);
/// assert_eq!(sp.n_vars(), 2);
/// assert_eq!(sp.var_name(1), "j");
/// ```
#[derive(Clone, Eq)]
pub struct Space {
    inner: Arc<SpaceInner>,
}

impl PartialEq for Space {
    fn eq(&self, other: &Self) -> bool {
        // Almost every comparison in the scanner is between clones of one
        // space; the pointer check skips the per-name string comparison.
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner
    }
}

impl std::hash::Hash for Space {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hashes the names, consistent with `PartialEq`: the pointer check
        // there is only a shortcut for the same content comparison.
        self.inner.hash(state);
    }
}

#[derive(PartialEq, Eq, Hash)]
struct SpaceInner {
    params: Vec<String>,
    vars: Vec<String>,
}

impl Space {
    /// Creates a space with the given parameter and set-variable names.
    ///
    /// # Panics
    ///
    /// Panics if any name is duplicated across the two lists.
    pub fn new<S: AsRef<str>>(params: &[S], vars: &[S]) -> Self {
        let params: Vec<String> = params.iter().map(|s| s.as_ref().to_owned()).collect();
        let vars: Vec<String> = vars.iter().map(|s| s.as_ref().to_owned()).collect();
        let mut all: Vec<&str> = params.iter().map(String::as_str).collect();
        all.extend(vars.iter().map(String::as_str));
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "duplicate variable name in space");
        let key = (params, vars);
        let table = INTERN.get_or_init(|| Mutex::new(HashMap::new()));
        let mut table = table.lock().unwrap();
        if let Some(inner) = table.get(&key) {
            return Space {
                inner: Arc::clone(inner),
            };
        }
        let inner = Arc::new(SpaceInner {
            params: key.0.clone(),
            vars: key.1.clone(),
        });
        if table.len() < INTERN_CAP {
            table.insert(key, Arc::clone(&inner));
        }
        Space { inner }
    }

    /// A space with `n_vars` anonymous set variables named `t1..tN` and no
    /// parameters.
    pub fn anonymous(n_vars: usize) -> Self {
        let vars: Vec<String> = (1..=n_vars).map(|i| format!("t{i}")).collect();
        Space::new::<String>(&[], &vars)
    }

    /// Number of symbolic parameters.
    pub fn n_params(&self) -> usize {
        self.inner.params.len()
    }

    /// Number of set variables (dimensions).
    pub fn n_vars(&self) -> usize {
        self.inner.vars.len()
    }

    /// Name of parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param_name(&self, i: usize) -> &str {
        &self.inner.params[i]
    }

    /// Name of set variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn var_name(&self, i: usize) -> &str {
        &self.inner.vars[i]
    }

    /// All parameter names.
    pub fn param_names(&self) -> &[String] {
        &self.inner.params
    }

    /// All set-variable names.
    pub fn var_names(&self) -> &[String] {
        &self.inner.vars
    }

    /// Index of the named parameter, if present.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.inner.params.iter().position(|p| p == name)
    }

    /// Index of the named set variable, if present.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.inner.vars.iter().position(|p| p == name)
    }

    /// A new space identical to this one but with set variables renamed.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != self.n_vars()` or names collide.
    pub fn with_var_names<S: AsRef<str>>(&self, names: &[S]) -> Space {
        assert_eq!(names.len(), self.n_vars());
        let params: Vec<&str> = self.inner.params.iter().map(String::as_str).collect();
        let vars: Vec<&str> = names.iter().map(|s| s.as_ref()).collect();
        Space::new(&params, &vars)
    }

    /// A new space with the same parameters and `n` set variables named
    /// `t1..tn` (used when extending all polyhedra to a common
    /// dimensionality).
    pub fn with_anonymous_vars(&self, n: usize) -> Space {
        let params: Vec<String> = self.inner.params.clone();
        let vars: Vec<String> = (1..=n).map(|i| format!("t{i}")).collect();
        let pr: Vec<&str> = params.iter().map(String::as_str).collect();
        let vr: Vec<&str> = vars.iter().map(String::as_str).collect();
        Space::new(&pr, &vr)
    }

    /// Total number of non-constant, non-local columns (`n_params + n_vars`).
    pub fn n_named(&self) -> usize {
        self.n_params() + self.n_vars()
    }
}

impl fmt::Debug for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] -> [{}]",
            self.inner.params.join(", "),
            self.inner.vars.join(", ")
        )
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let sp = Space::new(&["n", "m"], &["i", "j", "k"]);
        assert_eq!(sp.n_params(), 2);
        assert_eq!(sp.n_vars(), 3);
        assert_eq!(sp.param_index("m"), Some(1));
        assert_eq!(sp.var_index("k"), Some(2));
        assert_eq!(sp.var_index("n"), None);
        assert_eq!(sp.n_named(), 5);
    }

    #[test]
    fn anonymous_names() {
        let sp = Space::anonymous(3);
        assert_eq!(sp.var_name(0), "t1");
        assert_eq!(sp.var_name(2), "t3");
        assert_eq!(sp.n_params(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let _ = Space::new(&["n"], &["n"]);
    }

    #[test]
    fn equality_is_structural() {
        let a = Space::new(&["n"], &["i"]);
        let b = Space::new(&["n"], &["i"]);
        assert_eq!(a, b);
        let c = Space::new(&["n"], &["j"]);
        assert_ne!(a, c);
    }

    #[test]
    fn structurally_equal_spaces_are_interned() {
        let a = Space::new(&["nq"], &["iq", "jq"]);
        let b = Space::new(&["nq"], &["iq", "jq"]);
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }

    #[test]
    fn rename_and_extend() {
        let sp = Space::new(&["n"], &["i", "j"]);
        let r = sp.with_var_names(&["x", "y"]);
        assert_eq!(r.var_name(0), "x");
        assert_eq!(r.n_params(), 1);
        let e = sp.with_anonymous_vars(4);
        assert_eq!(e.n_vars(), 4);
        assert_eq!(e.param_name(0), "n");
    }
}
