//! Public accessors on [`Conjunct`] used by polyhedra scanners: loop-bound
//! extraction, degenerate-loop detection, stride recognition, guard-atom
//! decomposition, and single-conjunct complements.

use crate::conjunct::Conjunct;
use crate::gist::gist_conjunct;
use crate::linexpr::{Constraint, ConstraintKind, LinExpr};
use crate::set::{atoms, range_mod_pattern, try_complement_atom};

/// A lower or upper bound on a loop variable extracted from a conjunct:
/// `coeff · v ≥ expr` (lower) or `coeff · v ≤ expr` (upper), with
/// `coeff > 0` and `expr` free of `v` and of existential variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarBound {
    /// Positive coefficient of the bounded variable.
    pub coeff: i64,
    /// The bounding expression over the remaining named columns.
    pub expr: LinExpr,
}

impl Conjunct {
    /// Local-free inequality bounds on set variable `v`:
    /// `(lower_bounds, upper_bounds)`.
    pub fn bounds_on(&self, v: usize) -> (Vec<VarBound>, Vec<VarBound>) {
        let named = 1 + self.space().n_named();
        let col = self.var_col(v);
        let mut lowers = Vec::new();
        let mut uppers = Vec::new();
        for r in self.rows() {
            if r.kind != ConstraintKind::Geq || r.c[col] == 0 {
                continue;
            }
            if r.c[named..].iter().any(|&x| x != 0) {
                continue; // existential bound — not expressible as a loop bound
            }
            let a = r.c[col];
            // a·v + e ≥ 0.  For a > 0: v ≥ ⌈-e/a⌉ (lower).  For a < 0:
            // (-a)·v ≤ e (upper).
            let mut e = r.c[..named].to_vec();
            e[col] = 0;
            if a > 0 {
                let neg: Vec<i64> = e.iter().map(|&x| -x).collect();
                lowers.push(VarBound {
                    coeff: a,
                    expr: LinExpr::from_raw(self.space(), &neg),
                });
            } else {
                uppers.push(VarBound {
                    coeff: -a,
                    expr: LinExpr::from_raw(self.space(), &e),
                });
            }
        }
        (lowers, uppers)
    }

    /// A local-free equality determining variable `v`: returns `(c, e)` with
    /// `c·v = e`, `c > 0`, `e` free of `v`. This is the paper's *degenerate
    /// loop* condition.
    pub fn equality_on(&self, v: usize) -> Option<(i64, LinExpr)> {
        let named = 1 + self.space().n_named();
        let col = self.var_col(v);
        for r in self.rows() {
            if r.kind != ConstraintKind::Eq || r.c[col] == 0 {
                continue;
            }
            if r.c[named..].iter().any(|&x| x != 0) {
                continue;
            }
            let a = r.c[col];
            // a·v + e = 0  →  |a|·v = sign(a)·(-e)
            let mut e = r.c[..named].to_vec();
            e[col] = 0;
            let s = if a > 0 { -1 } else { 1 };
            let e: Vec<i64> = e.iter().map(|&x| s * x).collect();
            return Some((a.abs(), LinExpr::from_raw(self.space(), &e)));
        }
        None
    }

    /// A stride constraint on variable `v` with unit coefficient: returns
    /// `(m, r)` meaning `v ≡ r (mod m)` with `m > 1` and `r` free of `v`.
    pub fn stride_on(&self, v: usize) -> Option<(i64, LinExpr)> {
        let named = 1 + self.space().n_named();
        let col = self.var_col(v);
        for atom in atoms(self) {
            if atom.n_locals() != 1 {
                continue;
            }
            let Some(rm) = range_mod_pattern(&atom) else {
                continue;
            };
            if rm.lo != rm.hi {
                continue; // a range, not an exact congruence
            }
            let a = rm.expr[col];
            if a.abs() != 1 {
                continue;
            }
            // expr ≡ lo (mod m) where expr = a·v + rest
            // v ≡ a·(lo - rest) (mod m)
            let mut rest = rm.expr.clone();
            rest[col] = 0;
            let mut raw: Vec<i64> = rest.iter().map(|&x| -a * x).collect();
            raw[0] += a * rm.lo;
            raw.truncate(named);
            // The residue is only defined modulo m: keep its constant term
            // canonical in [0, m).
            raw[0] = crate::num::mod_floor(raw[0], rm.m);
            return Some((rm.m, LinExpr::from_raw(self.space(), &raw)));
        }
        None
    }

    /// All local-free constraints that involve set variable `v` (candidates
    /// for iteration-space splitting in `initAST`).
    pub fn constraints_on_var(&self, v: usize) -> Vec<Constraint> {
        let named = 1 + self.space().n_named();
        let col = self.var_col(v);
        let mut out = Vec::new();
        for r in self.rows() {
            if r.c[col] == 0 || r.c[named..].iter().any(|&x| x != 0) {
                continue;
            }
            let e = LinExpr::from_raw(self.space(), &r.c[..named]);
            out.push(match r.kind {
                ConstraintKind::Eq => e.eq0(),
                ConstraintKind::Geq => e.geq0(),
            });
        }
        out
    }

    /// Decomposes the conjunct into guard *atoms*: single local-free
    /// constraints, plus maximal groups of rows connected by shared
    /// existential variables (stride/range constraints).
    pub fn guard_atoms(&self) -> Vec<Conjunct> {
        if self.is_known_false() {
            return vec![self.clone()];
        }
        atoms(self)
    }

    /// The complement of this conjunct if it is a single conjunct — the
    /// paper's requirement for a liftable overhead condition. Returns `None`
    /// when the complement is a union (e.g. for an affine equality).
    pub fn complement_single(&self) -> Option<Conjunct> {
        let ats = atoms(self);
        if ats.len() != 1 {
            return None;
        }
        let mut pieces = try_complement_atom(&ats[0])?;
        if pieces.len() != 1 {
            return None;
        }
        Some(pieces.pop().unwrap())
    }

    /// If this conjunct (typically a guard atom) is a pure congruence/range
    /// pattern over one existential variable, returns `(expr, m, lo, hi)`
    /// meaning `∃α: lo ≤ expr − m·α ≤ hi` — i.e. `expr mod m ∈ [lo, hi]`
    /// after shifting. `lo == hi` is an exact congruence.
    pub fn range_mod(&self) -> Option<(LinExpr, i64, i64, i64)> {
        let ats = atoms(self);
        if ats.len() != 1 {
            return None;
        }
        let rm = range_mod_pattern(&ats[0])?;
        let named = 1 + self.space().n_named();
        let expr = LinExpr::from_raw(self.space(), &rm.expr[..named]);
        Some((expr, rm.m, rm.lo, rm.hi))
    }

    /// The highest set-variable index used by any row (including stride
    /// rows), or `None` if no set variable occurs.
    pub fn max_var_used(&self) -> Option<usize> {
        (0..self.space().n_vars()).rev().find(|&v| self.uses_var(v))
    }

    /// True if set variable `v` occurs in any row.
    pub fn uses_var(&self, v: usize) -> bool {
        let col = self.var_col(v);
        self.rows().iter().any(|r| r.c[col] != 0)
    }

    /// Net sign of `v`'s coefficient in the first inequality mentioning it:
    /// positive means this conjunct bounds `v` from below (holds for the
    /// *larger* values). Used to order split-node children lexicographically.
    pub fn var_sign_hint(&self, v: usize) -> i64 {
        let col = self.var_col(v);
        for r in self.rows() {
            if r.kind == ConstraintKind::Geq && r.c[col] != 0 {
                return r.c[col].signum();
            }
        }
        0
    }

    /// `Gist(self, context)` at conjunct level (see [`crate::Set::gist`]).
    pub fn gist(&self, context: &Conjunct) -> Conjunct {
        gist_conjunct(self, context)
    }

    /// This conjunct as a one-disjunct [`crate::Set`].
    pub fn to_set(&self) -> crate::Set {
        if self.is_known_false() {
            crate::Set::empty(self.space())
        } else {
            crate::Set::from_conjunct(self.clone())
        }
    }

    /// Simplifies in place: eliminates removable existential variables and
    /// canonicalizes rows.
    pub fn simplified(&self) -> Conjunct {
        crate::project::simplify_conjunct(self)
    }

    /// Local-free over-approximation: remaining existentials are removed
    /// by real-shadow Fourier–Motzkin, so stride/congruence information is
    /// dropped but inequality bounds expressible only *through* a local
    /// become explicit rows that [`Conjunct::bounds_on`] can see. The
    /// result contains `self`; use it where scanning a superset is sound.
    pub fn real_shadow(&self) -> Conjunct {
        crate::project::real_shadow(self)
    }

    /// Drops inequality rows implied by the remaining rows (so bounds like
    /// `v ≤ n` next to `v ≤ n-1` disappear).
    pub fn without_redundant(&self) -> Conjunct {
        crate::gist::drop_self_redundant(self)
    }

    /// Raw row view: each constraint as `(kind, coefficients)` over the
    /// columns `[constant | params | vars | locals]` (asserted `= 0` or
    /// `≥ 0`). For consumers that lower constraints to runtime code.
    pub fn rows_raw(&self) -> impl Iterator<Item = (ConstraintKind, &[i64])> + '_ {
        self.rows().iter().map(|r| (r.kind, r.c.as_slice()))
    }

    /// Translates set variable `v`: the result constrains `v' = v + delta`
    /// (`delta` must not mention `v`). This is the loop *shift*
    /// transformation.
    ///
    /// # Panics
    ///
    /// Panics if `delta` mentions `v` or belongs to a different space.
    pub fn translate_var(&self, v: usize, delta: &LinExpr) -> Conjunct {
        assert_eq!(delta.space(), self.space());
        assert_eq!(delta.var_coeff(v), 0, "delta must not mention the variable");
        let col = self.var_col(v);
        let mut out = self.clone();
        if out.is_known_false() {
            return out;
        }
        let delta_cols = delta.raw_coeffs();
        let rows = std::mem::take(out.rows_mut());
        for mut r in rows {
            let k = r.c[col];
            if k != 0 {
                // v_old = v_new - delta: keep k on the column, subtract k·delta.
                for (j, &d) in delta_cols.iter().enumerate() {
                    if d != 0 {
                        r.c[j] = crate::num::add(r.c[j], crate::num::mul(-k, d));
                    }
                }
            }
            out.push_row(r);
        }
        out
    }

    /// Re-expresses this conjunct in `target` with an explicit variable
    /// mapping: old set variable `v` becomes `target` variable `map[v]`.
    /// Parameters must be identical; unmapped target variables are
    /// unconstrained. Exact for all rows including existential ones.
    ///
    /// # Panics
    ///
    /// Panics on parameter mismatch, out-of-range or duplicate targets.
    pub fn remap_vars(&self, target: &crate::Space, map: &[usize]) -> Conjunct {
        let src = self.space();
        assert_eq!(src.param_names(), target.param_names());
        assert_eq!(map.len(), src.n_vars());
        let mut seen = vec![false; target.n_vars()];
        for &m in map {
            assert!(m < target.n_vars(), "remap target out of range");
            assert!(!seen[m], "duplicate remap target");
            seen[m] = true;
        }
        let np = src.n_params();
        let mut cols: Vec<usize> = Vec::with_capacity(self.ncols());
        cols.push(0);
        for p in 0..np {
            cols.push(1 + p);
        }
        for &m in &map[..src.n_vars()] {
            cols.push(1 + np + m);
        }
        let new_named = 1 + target.n_named();
        for l in 0..self.n_locals() {
            cols.push(new_named + l);
        }
        self.remap_columns(target, self.n_locals(), &cols)
    }

    /// Exchanges two set variables (columns), e.g. to compare two
    /// polyhedra along one dimension by placing them on distinct variables.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_vars(&self, a: usize, b: usize) -> Conjunct {
        assert!(a < self.space().n_vars() && b < self.space().n_vars());
        if a == b {
            return self.clone();
        }
        let mut map: Vec<usize> = (0..self.ncols()).collect();
        map.swap(self.var_col(a), self.var_col(b));
        self.remap_columns(self.space(), self.n_locals(), &map)
    }

    /// Re-expresses this conjunct in `target`, which must have the same
    /// parameters and at least as many set variables; the original variables
    /// map positionally onto the first dimensions. All rows (including
    /// existential ones) are preserved exactly.
    ///
    /// # Panics
    ///
    /// Panics if parameters differ or `target` has fewer variables.
    pub fn embed_into(&self, target: &crate::Space) -> Conjunct {
        let src = self.space();
        assert_eq!(
            src.param_names(),
            target.param_names(),
            "embed_into requires identical parameters"
        );
        assert!(
            target.n_vars() >= src.n_vars(),
            "embed_into target has fewer variables"
        );
        let np = src.n_params();
        let mut map: Vec<usize> = Vec::with_capacity(self.ncols());
        map.push(0);
        for p in 0..np {
            map.push(1 + p);
        }
        for v in 0..src.n_vars() {
            map.push(1 + np + v);
        }
        let new_named = 1 + target.n_named();
        for l in 0..self.n_locals() {
            map.push(new_named + l);
        }
        self.remap_columns(target, self.n_locals(), &map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::Set;
    use crate::space::Space;

    fn conj(text: &str) -> Conjunct {
        Set::parse(text).unwrap().conjuncts()[0].clone()
    }

    #[test]
    fn bounds_extraction() {
        let c = conj("[n] -> { [i,j] : 0 <= i && 2i <= n && i <= 50 }");
        let (lo, hi) = c.bounds_on(0);
        assert_eq!(lo.len(), 1);
        assert_eq!(lo[0].coeff, 1);
        assert_eq!(lo[0].expr.to_string(), "0");
        assert_eq!(hi.len(), 2);
        let coeffs: Vec<i64> = hi.iter().map(|b| b.coeff).collect();
        assert!(coeffs.contains(&2) && coeffs.contains(&1));
    }

    #[test]
    fn degenerate_equality() {
        let c = conj("[n] -> { [i,j] : i = n + 2 }");
        let (a, e) = c.equality_on(0).expect("degenerate");
        assert_eq!(a, 1);
        assert_eq!(e.to_string(), "n + 2");
        // Equality on j not found through i's accessor.
        assert!(c.equality_on(1).is_none());
        // Non-unit coefficient preserved.
        let c = conj("[n] -> { [i,j] : 2i = n }");
        let (a, e) = c.equality_on(0).expect("degenerate");
        assert_eq!(a, 2);
        assert_eq!(e.to_string(), "n");
    }

    #[test]
    fn stride_recognition() {
        let c = conj("{ [i,j] : exists(a : i = 4a + 1) }");
        let (m, r) = c.stride_on(0).expect("stride");
        assert_eq!(m, 4);
        assert_eq!(r.to_string(), "1");
        // j ≡ i (mod 3)
        let c = conj("{ [i,j] : exists(b : j = i + 3b) }");
        let (m, r) = c.stride_on(1).expect("stride");
        assert_eq!(m, 3);
        assert_eq!(r.to_string(), "i");
        assert!(c.stride_on(0).is_none() || c.stride_on(0).unwrap().1.to_string() == "j");
    }

    #[test]
    fn guard_atoms_and_complement() {
        let c = conj("[n] -> { [i,j] : i >= 2 && exists(a : i = 2a) }");
        let ats = c.guard_atoms();
        assert_eq!(ats.len(), 2);
        for a in &ats {
            let comp = a.complement_single().expect("single-conjunct complement");
            // a ∪ ¬a covers, a ∩ ¬a empty (point check)
            for i in -6..=6 {
                let in_a = a.contains(&[100], &[i, 0]);
                let in_c = comp.contains(&[100], &[i, 0]);
                assert!(in_a ^ in_c, "i={i} atom={a} comp={comp}");
            }
        }
        // Equality atom has no single-conjunct complement.
        let c = conj("[n] -> { [i,j] : i = 5 }");
        assert!(c.guard_atoms()[0].complement_single().is_none());
    }

    #[test]
    fn var_usage_helpers() {
        let c = conj("[n] -> { [i,j] : i <= n && exists(a : j = 2a) }");
        assert!(c.uses_var(0));
        assert!(c.uses_var(1));
        assert_eq!(c.max_var_used(), Some(1));
        let c = conj("[n] -> { [i,j] : i <= n }");
        assert_eq!(c.max_var_used(), Some(0));
        assert_eq!(c.var_sign_hint(0), -1); // upper bound on i
        let c = conj("[n] -> { [i,j] : i >= 5 }");
        assert_eq!(c.var_sign_hint(0), 1);
    }

    #[test]
    fn constraints_on_var_skips_strides() {
        let c = conj("[n] -> { [i,j] : 1 <= i <= n && exists(a : i = 2a) }");
        let cs = c.constraints_on_var(0);
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn gist_method_matches_function() {
        let a = conj("{ [i,j] : i >= 0 && j >= 0 }");
        let b = conj("{ [i,j] : i >= 0 }");
        let g = a.gist(&b);
        assert!(!g.uses_var(0));
        assert!(g.uses_var(1));
    }

    #[test]
    fn to_set_roundtrip() {
        let sp = Space::new(&["n"], &["i"]);
        let c = Conjunct::universe(&sp);
        assert!(c.to_set().is_universe());
        assert!(Conjunct::empty(&sp).to_set().is_empty());
    }
}
