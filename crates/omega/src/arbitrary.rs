//! Seeded random generation of iteration-space building blocks for the
//! differential-testing harness (`crates/difftest`).
//!
//! Everything here is **deterministic**: a [`Rng`] is a SplitMix64 stream
//! fully determined by its seed, so any case the fuzzer reports is
//! reproducible from the seed alone. The constraint builders are biased
//! toward the shapes §2.2 of the paper exercises — parameterized bounds,
//! strides (existential congruences), index-set splits, and unions — while
//! maintaining one hard invariant the downstream oracle depends on:
//!
//! > every generated conjunct gives **every set variable an explicit lower
//! > and upper bound** whose magnitude (after substituting the largest
//! > parameter value the harness uses) stays within [`BOX_BOUND`].
//!
//! Extra constraints beyond the bounding box are always inequalities or
//! equalities between in-box quantities, so they can only *tighten* the
//! set. The harness therefore enumerates ground truth over the fixed box
//! `[-BOX_BOUND, BOX_BOUND]^d` without risking silently-missed points.

use crate::conjunct::Conjunct;
use crate::linexpr::{Constraint, LinExpr};
use crate::set::Set;
use crate::space::Space;

/// Magnitude bound on any coordinate of any point of a generated set (see
/// module docs). Enumerating `[-BOX_BOUND, BOX_BOUND]^dims` is guaranteed
/// to cover every generated (or shrunk) domain.
pub const BOX_BOUND: i64 = 20;

/// Largest value the harness may bind a parameter to (generation keeps
/// `param + slack` within [`BOX_BOUND`] under this assumption).
pub const MAX_PARAM: i64 = 8;

/// A SplitMix64 pseudo-random stream: tiny, fast, and fully deterministic
/// from the seed — exactly what a reproducible fuzzer needs. (Same
/// finalizer as Vigna's reference implementation.)
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A stream seeded with `seed` (distinct seeds give unrelated streams).
    pub fn new(seed: u64) -> Rng {
        Rng {
            // Pre-mix the seed so adjacent seeds start far apart; the
            // increment is the SplitMix64 golden-gamma constant.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Picks an index by cumulative weights (e.g. `&[40, 40, 20]`).
    pub fn weighted(&mut self, weights: &[u64]) -> usize {
        let total: u64 = weights.iter().sum();
        let mut x = self.next_u64() % total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

/// One congruence `expr ≡ rem (mod modulus)` — the structured form of a
/// stride constraint, kept separate from affine [`Constraint`]s so the
/// shrinker can drop or weaken strides independently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Congruence {
    /// Left-hand side (a variable, or a difference of two variables).
    pub expr: LinExpr,
    /// Residue in `0..modulus`.
    pub rem: i64,
    /// Modulus (`> 0`).
    pub modulus: i64,
}

/// A conjunct kept in structured form: plain affine constraints plus
/// congruences. This is what the fuzzer generates and what the shrinker
/// mutates; [`ArbConjunct::to_conjunct`] lowers it to a solver
/// [`Conjunct`].
#[derive(Clone, Debug)]
pub struct ArbConjunct {
    /// Affine constraints (bounds, cross-variable inequalities, splits).
    pub constraints: Vec<Constraint>,
    /// Stride constraints.
    pub congruences: Vec<Congruence>,
}

impl ArbConjunct {
    /// Lowers to a solver conjunct over `space`.
    pub fn to_conjunct(&self, space: &Space) -> Conjunct {
        let mut c = Conjunct::universe(space);
        for k in &self.constraints {
            c.add_constraint(k);
        }
        for g in &self.congruences {
            c.add_congruence(&g.expr, g.rem, g.modulus);
        }
        c
    }

    /// Total constraint count (affine + congruences) — the size metric the
    /// shrinker minimizes.
    pub fn len(&self) -> usize {
        self.constraints.len() + self.congruences.len()
    }

    /// True when the conjunct carries no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty() && self.congruences.is_empty()
    }
}

/// A statement domain in structured form: a union of [`ArbConjunct`]s.
#[derive(Clone, Debug)]
pub struct ArbSet {
    /// The union's members (index-set splits / unions of §2.2).
    pub conjuncts: Vec<ArbConjunct>,
}

impl ArbSet {
    /// Lowers to a solver [`Set`] over `space`.
    pub fn to_set(&self, space: &Space) -> Set {
        let mut s = Set::empty(space);
        for c in &self.conjuncts {
            s = s.union(&Set::from_conjunct(c.to_conjunct(space)));
        }
        s
    }

    /// Total constraint count across the union.
    pub fn len(&self) -> usize {
        self.conjuncts.iter().map(ArbConjunct::len).sum()
    }

    /// True when no conjunct remains.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }
}

/// Distribution knobs for [`arb_set`]. The defaults encode the §2.2 bias:
/// mostly small dimensionalities, frequent strides and parameterized
/// bounds, occasional unions and index-set splits.
#[derive(Clone, Copy, Debug)]
pub struct ArbConfig {
    /// Probability (in percent) that a bound uses a parameter when one is
    /// available.
    pub param_bound_pct: u64,
    /// Probability (in percent) of attaching a stride congruence to a
    /// conjunct.
    pub stride_pct: u64,
    /// Probability (in percent) of an index-set-split equality.
    pub split_pct: u64,
    /// Cumulative weights for 1, 2, 3 conjuncts in a union.
    pub union_weights: [u64; 3],
    /// Maximum extra (tightening) cross-variable inequalities.
    pub max_cross: usize,
}

impl Default for ArbConfig {
    fn default() -> Self {
        ArbConfig {
            param_bound_pct: 45,
            stride_pct: 35,
            split_pct: 15,
            union_weights: [70, 25, 5],
            max_cross: 2,
        }
    }
}

/// Lower+upper bound pair for variable `v`: constants, or a parameter with
/// small slack. The invariant is that under any parameter binding in
/// `0..=MAX_PARAM` both bounds lie within `BOX_BOUND - 4`, leaving room
/// for one split-equality translation (|offset| ≤ 3) before the box is hit.
fn bound_pair(rng: &mut Rng, space: &Space, v: usize) -> (Constraint, Constraint) {
    let var = LinExpr::var(space, v);
    let lo = rng.range(-4, 3);
    // Lower bound: v >= lo (constant; parameters appear in upper bounds,
    // the common loop idiom `lo <= i <= n + c`).
    let lower = var.clone().geq(LinExpr::constant(space, lo));
    let upper = if space.n_params() > 0 && rng.chance(45, 100) {
        // v <= p + c with c in -2..=3: magnitude ≤ MAX_PARAM + 3.
        let p = rng.range(0, space.n_params() as i64 - 1) as usize;
        let c = rng.range(-2, 3);
        var.leq(LinExpr::param(space, p) + c)
    } else {
        // Constant upper bound, placed relative to lo so roughly one case
        // in six is empty (empty pieces are a shape worth scanning too).
        let hi = rng.range(lo - 2, lo + 11);
        var.leq(LinExpr::constant(space, hi))
    };
    (lower, upper)
}

/// A random tightening inequality over one or two variables, e.g. the
/// triangular `t2 <= t1` or a skewed `2·t1 - t2 >= -3`.
fn cross_constraint(rng: &mut Rng, space: &Space) -> Constraint {
    let nv = space.n_vars();
    let a = rng.range(0, nv as i64 - 1) as usize;
    let mut e = LinExpr::var(space, a) * rng.range(1, 2);
    if nv > 1 && rng.chance(70, 100) {
        let mut b = rng.range(0, nv as i64 - 1) as usize;
        if b == a {
            b = (b + 1) % nv;
        }
        e = e + LinExpr::var(space, b) * rng.range(-2, 2);
    }
    let c = rng.range(-6, 6);
    if rng.chance(1, 2) {
        e.geq(LinExpr::constant(space, c))
    } else {
        e.leq(LinExpr::constant(space, c))
    }
}

/// An index-set-split equality: `v = c` or `v = w + c` with small `c`.
fn split_equality(rng: &mut Rng, space: &Space) -> Constraint {
    let nv = space.n_vars();
    let a = rng.range(0, nv as i64 - 1) as usize;
    let va = LinExpr::var(space, a);
    if nv > 1 && rng.chance(60, 100) {
        let mut b = rng.range(0, nv as i64 - 1) as usize;
        if b == a {
            b = (b + 1) % nv;
        }
        let c = rng.range(-3, 3);
        va.eq(LinExpr::var(space, b) + c)
    } else {
        let c = rng.range(-3, 8);
        va.eq(LinExpr::constant(space, c))
    }
}

/// A stride congruence: `v ≡ r (mod m)`, or the two-variable
/// `v - w ≡ r (mod m)` of Figure 8(a).
fn stride(rng: &mut Rng, space: &Space) -> Congruence {
    let nv = space.n_vars();
    let m = [2i64, 2, 3, 4][rng.range(0, 3) as usize];
    let a = rng.range(0, nv as i64 - 1) as usize;
    let mut expr = LinExpr::var(space, a);
    if nv > 1 && rng.chance(30, 100) {
        let mut b = rng.range(0, nv as i64 - 1) as usize;
        if b == a {
            b = (b + 1) % nv;
        }
        expr = expr - LinExpr::var(space, b);
    }
    Congruence {
        expr,
        rem: rng.range(0, m - 1),
        modulus: m,
    }
}

/// One random conjunct over `space`: a full bounding box for every
/// variable plus optional tightening constraints, a split, and strides.
pub fn arb_conjunct(rng: &mut Rng, space: &Space, cfg: &ArbConfig) -> ArbConjunct {
    let mut out = ArbConjunct {
        constraints: Vec::new(),
        congruences: Vec::new(),
    };
    for v in 0..space.n_vars() {
        let (lo, hi) = bound_pair(rng, space, v);
        out.constraints.push(lo);
        out.constraints.push(hi);
    }
    let n_cross = rng.range(0, cfg.max_cross as i64) as usize;
    for _ in 0..n_cross {
        out.constraints.push(cross_constraint(rng, space));
    }
    if rng.chance(cfg.split_pct, 100) {
        out.constraints.push(split_equality(rng, space));
    }
    if rng.chance(cfg.stride_pct, 100) {
        out.congruences.push(stride(rng, space));
        // Occasionally a second stride (the mod-4 even/odd split of
        // Figure 8(d) composes two congruences over one space).
        if rng.chance(20, 100) {
            out.congruences.push(stride(rng, space));
        }
    }
    out
}

/// One random statement domain: a union of conjuncts per
/// [`ArbConfig::union_weights`].
pub fn arb_set(rng: &mut Rng, space: &Space, cfg: &ArbConfig) -> ArbSet {
    let n = rng.weighted(&cfg.union_weights) + 1;
    ArbSet {
        conjuncts: (0..n).map(|_| arb_conjunct(rng, space, cfg)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_spreads() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = Rng::new(43);
        assert_ne!(xs, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
        // range stays in range and hits both ends eventually
        let mut r = Rng::new(7);
        let vals: Vec<i64> = (0..400).map(|_| r.range(-3, 3)).collect();
        assert!(vals.iter().all(|v| (-3..=3).contains(v)));
        assert!(vals.contains(&-3) && vals.contains(&3));
    }

    #[test]
    fn weighted_covers_all_buckets() {
        let mut r = Rng::new(1);
        let mut seen = [false; 3];
        for _ in 0..500 {
            seen[r.weighted(&[70, 25, 5])] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn generated_sets_stay_inside_the_box() {
        let cfg = ArbConfig::default();
        for seed in 0..200 {
            let mut rng = Rng::new(seed);
            let space = Space::new(&["n"], &["t1", "t2"]);
            let s = arb_set(&mut rng, &space, &cfg).to_set(&space);
            let pts = s.enumerate(
                &[MAX_PARAM],
                &[-BOX_BOUND - 4, -BOX_BOUND - 4],
                &[BOX_BOUND + 4, BOX_BOUND + 4],
            );
            for p in pts {
                assert!(
                    p.iter().all(|x| x.abs() <= BOX_BOUND),
                    "seed {seed}: point {p:?} escapes the box in {}",
                    s.to_input_syntax()
                );
            }
        }
    }

    #[test]
    fn structured_form_round_trips_membership() {
        let cfg = ArbConfig::default();
        let space = Space::new(&["n"], &["t1"]);
        let mut rng = Rng::new(11);
        for _ in 0..50 {
            let arb = arb_set(&mut rng, &space, &cfg);
            let direct = arb.to_set(&space);
            let reparsed = Set::parse(&direct.to_input_syntax()).unwrap();
            for x in -BOX_BOUND..=BOX_BOUND {
                assert_eq!(
                    direct.contains(&[5], &[x]),
                    reparsed.contains(&[5], &[x]),
                    "x={x} in {}",
                    direct.to_input_syntax()
                );
            }
        }
    }
}
