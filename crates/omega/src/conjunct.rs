//! Conjunctions of affine constraints with existential (local) variables —
//! the single-polyhedron building block of a [`crate::Set`].

use crate::coeffs::Coeffs;
use crate::linexpr::{Constraint, ConstraintKind, LinExpr};
use crate::num;
use crate::space::Space;
use std::fmt;

/// One affine row over the columns `[const | params | vars | locals]`.
///
/// Coefficients are stored inline ([`Coeffs`]) so a `Vec<Row>` keeps the
/// whole constraint system contiguous in memory — the sat/FM/gist loops
/// clone and scan rows without touching the allocator for typical widths.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Row {
    pub(crate) kind: ConstraintKind,
    pub(crate) c: Coeffs,
}

impl Row {
    pub(crate) fn new(kind: ConstraintKind, c: impl Into<Coeffs>) -> Self {
        Row { kind, c: c.into() }
    }

    /// True if every non-constant coefficient is zero.
    pub(crate) fn is_constant(&self) -> bool {
        self.c[1..].iter().all(|&x| x == 0)
    }

    /// For a constant row, whether it is trivially true.
    pub(crate) fn constant_truth(&self) -> bool {
        match self.kind {
            ConstraintKind::Eq => self.c[0] == 0,
            ConstraintKind::Geq => self.c[0] >= 0,
        }
    }

    /// Normalizes by the gcd of the non-constant coefficients. Returns
    /// `false` if the row became an obvious contradiction.
    pub(crate) fn normalize(&mut self) -> bool {
        let mut g = 0;
        for &x in &self.c[1..] {
            g = num::gcd(g, x);
            if g == 1 {
                // gcd can only shrink toward 1; nothing left to divide.
                return true;
            }
        }
        if g == 0 {
            // A false constant row survives as a canonical contradiction
            // marker; the caller sees the verdict either way.
            return self.constant_truth();
        }
        if g > 1 {
            match self.kind {
                ConstraintKind::Eq => {
                    if self.c[0] % g != 0 {
                        return false; // e.g. 2x + 1 = 0 has no integer solution
                    }
                    for x in &mut self.c {
                        *x /= g;
                    }
                }
                ConstraintKind::Geq => {
                    self.c[0] = num::floor_div(self.c[0], g);
                    for x in &mut self.c[1..] {
                        *x /= g;
                    }
                }
            }
        }
        true
    }
}

/// A conjunction of affine equalities and inequalities over a [`Space`],
/// possibly with existentially quantified *local* variables (Omega
/// "wildcards"), which encode stride/modulo constraints such as
/// `∃α: i = 4α + 1`.
///
/// A `Conjunct` is the "single conjunct" object the paper's AST fields are
/// required to hold.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Conjunct {
    space: Space,
    n_locals: usize,
    rows: Vec<Row>,
    /// Set when normalization discovered an obvious contradiction.
    known_false: bool,
}

impl Conjunct {
    /// The unconstrained conjunct (TRUE) over `space`.
    pub fn universe(space: &Space) -> Self {
        Conjunct {
            space: space.clone(),
            n_locals: 0,
            rows: Vec::new(),
            known_false: false,
        }
    }

    /// A canonical empty (FALSE) conjunct over `space`.
    pub fn empty(space: &Space) -> Self {
        Conjunct {
            space: space.clone(),
            n_locals: 0,
            rows: Vec::new(),
            known_false: true,
        }
    }

    /// Builds a conjunct from public [`Constraint`]s (no locals).
    ///
    /// # Panics
    ///
    /// Panics if any constraint belongs to a different space.
    pub fn from_constraints<I: IntoIterator<Item = Constraint>>(space: &Space, cons: I) -> Self {
        let mut c = Conjunct::universe(space);
        for k in cons {
            c.add_constraint(&k);
        }
        c
    }

    /// Reassembles a conjunct from its stored parts (the persistence
    /// layer's deserializer). The caller is responsible for row widths
    /// matching `1 + space.n_named() + n_locals`; rows are taken as-is —
    /// no re-normalization — so a round-trip through
    /// [`crate::persist`]'s codec reproduces the original exactly.
    pub(crate) fn from_raw_parts(
        space: Space,
        n_locals: usize,
        rows: Vec<Row>,
        known_false: bool,
    ) -> Self {
        debug_assert!(rows
            .iter()
            .all(|r| r.c.len() == 1 + space.n_named() + n_locals));
        Conjunct {
            space,
            n_locals,
            rows,
            known_false,
        }
    }

    /// The space of this conjunct.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// Number of existential (local) variables.
    pub fn n_locals(&self) -> usize {
        self.n_locals
    }

    /// Number of constraint rows currently stored.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// A canonical 128-bit fingerprint of this conjunct's constraint
    /// system — stable across processes and invariant under row order,
    /// duplicate rows, entailment-redundant inequalities, and gcd
    /// scaling (the key the persistent sat tier shares verdicts under;
    /// see [`crate::persist`]). Every provably-contradictory conjunct
    /// collapses to one canonical FALSE fingerprint.
    ///
    /// Note this fingerprints the *constraints*, not the space: two
    /// conjuncts over different same-arity spaces with identical rows
    /// fingerprint identically.
    pub fn canonical_fingerprint(&self) -> (u64, u64) {
        if self.known_false {
            return crate::persist::FALSE_KEY;
        }
        crate::persist::canonical_rows_key(&self.rows)
    }

    /// True if this conjunct is syntactically TRUE (no rows, not marked
    /// false). A satisfiable conjunct with rows is *not* "universe".
    pub fn is_universe(&self) -> bool {
        !self.known_false && self.rows.is_empty()
    }

    /// True if normalization has already discovered a contradiction. A
    /// `false` result does **not** guarantee satisfiability — use
    /// [`Conjunct::is_sat`] for an exact answer.
    pub fn is_known_false(&self) -> bool {
        self.known_false
    }

    pub(crate) fn mark_false(&mut self) {
        self.known_false = true;
        self.rows.clear();
        self.n_locals = 0;
    }

    pub(crate) fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    pub(crate) fn ncols(&self) -> usize {
        1 + self.space.n_named() + self.n_locals
    }

    pub(crate) fn local_col(&self, l: usize) -> usize {
        1 + self.space.n_named() + l
    }

    /// Column index of set variable `v`.
    pub(crate) fn var_col(&self, v: usize) -> usize {
        1 + self.space.n_params() + v
    }

    /// Adds a public (local-free) constraint.
    ///
    /// # Panics
    ///
    /// Panics if the constraint's space differs.
    pub fn add_constraint(&mut self, k: &Constraint) {
        assert_eq!(k.space(), &self.space, "space mismatch adding constraint");
        if self.known_false {
            return;
        }
        let mut c = k.expr().raw_coeffs().to_vec();
        c.resize(self.ncols(), 0);
        self.push_row(Row::new(k.kind(), c));
    }

    /// Adds a congruence `expr ≡ r (mod m)` by introducing a fresh local α
    /// with `expr - r - m·α = 0`.
    ///
    /// # Panics
    ///
    /// Panics if `m <= 0` or the expression's space differs.
    pub fn add_congruence(&mut self, expr: &LinExpr, r: i64, m: i64) {
        assert!(m > 0, "congruence modulus must be positive");
        assert_eq!(expr.space(), &self.space);
        if self.known_false {
            return;
        }
        let l = self.add_local();
        let mut c = expr.raw_coeffs().to_vec();
        c[0] = num::add(c[0], -r);
        c.resize(self.ncols(), 0);
        c[self.local_col(l)] = -m;
        self.push_row(Row::new(ConstraintKind::Eq, c));
    }

    /// Introduces a fresh local variable, returning its index.
    pub(crate) fn add_local(&mut self) -> usize {
        let idx = self.n_locals;
        self.n_locals += 1;
        for r in &mut self.rows {
            r.c.push(0);
        }
        idx
    }

    pub(crate) fn push_row(&mut self, mut row: Row) {
        if self.known_false {
            return;
        }
        debug_assert_eq!(row.c.len(), self.ncols());
        if !row.normalize() {
            self.mark_false();
            return;
        }
        if row.is_constant() {
            if !row.constant_truth() {
                self.mark_false();
            }
            return;
        }
        if !self.rows.contains(&row) {
            self.rows.push(row);
        }
    }

    /// Intersection with another conjunct over the same space (locals are
    /// kept separate).
    ///
    /// # Panics
    ///
    /// Panics if the spaces differ.
    pub fn intersect(&self, other: &Conjunct) -> Conjunct {
        assert_eq!(self.space, other.space, "space mismatch in intersect");
        if self.known_false || other.known_false {
            return Conjunct::empty(&self.space);
        }
        let mut out = self.clone();
        let base = out.n_locals;
        out.n_locals += other.n_locals;
        for r in &mut out.rows {
            r.c.resize(1 + out.space.n_named() + out.n_locals, 0);
        }
        let named = 1 + self.space.n_named();
        for r in &other.rows {
            let mut c = vec![0i64; 1 + out.space.n_named() + out.n_locals];
            c[..named].copy_from_slice(&r.c[..named]);
            for l in 0..other.n_locals {
                c[named + base + l] = r.c[named + l];
            }
            out.push_row(Row::new(r.kind, c));
        }
        out
    }

    /// Evaluates membership of a concrete point: true iff there exist
    /// integer values for the locals satisfying all rows. Exact except when
    /// a substituted constant exceeds the `i64` range on a row that still
    /// involves locals — then the answer degrades to a conservative `true`
    /// with [`crate::OmegaError::Overflow`] noted on the ambient certainty
    /// scope. Local-free rows are decided exactly in `i128` regardless.
    pub fn contains(&self, params: &[i64], vars: &[i64]) -> bool {
        assert_eq!(params.len(), self.space.n_params());
        assert_eq!(vars.len(), self.space.n_vars());
        if self.known_false {
            return false;
        }
        // Substitute the concrete values; remaining system is over locals only.
        let mut rows: Vec<Row> = Vec::with_capacity(self.rows.len());
        for r in &self.rows {
            let mut acc = r.c[0] as i128;
            for (i, &p) in params.iter().enumerate() {
                acc += r.c[1 + i] as i128 * p as i128;
            }
            for (i, &v) in vars.iter().enumerate() {
                acc += r.c[1 + params.len() + i] as i128 * v as i128;
            }
            let locals = &r.c[1 + self.space.n_named()..];
            let Ok(c0) = i64::try_from(acc) else {
                if locals.iter().all(|&x| x == 0) {
                    // Constant row: decide it exactly in i128.
                    let holds = match r.kind {
                        ConstraintKind::Eq => acc == 0,
                        ConstraintKind::Geq => acc >= 0,
                    };
                    if holds {
                        continue;
                    }
                    return false;
                }
                crate::limits::note(crate::limits::OmegaError::Overflow);
                return true;
            };
            let mut c = vec![c0];
            c.extend_from_slice(locals);
            rows.push(Row::new(r.kind, c));
        }
        crate::sat::rows_satisfiable(&rows, self.n_locals)
    }

    /// Exact satisfiability over integers (parameters treated
    /// existentially, as in Omega).
    pub fn is_sat(&self) -> bool {
        if self.known_false {
            return false;
        }
        crate::sat::rows_satisfiable(&self.rows, self.space.n_named() + self.n_locals)
    }

    /// Applies a column permutation/embedding: `map[j]` gives the new column
    /// of old column `j` (constant column must map to 0). Rows are rebuilt
    /// with `new_ncols` columns; unmapped new columns get coefficient 0.
    pub(crate) fn remap_columns(
        &self,
        new_space: &Space,
        new_n_locals: usize,
        map: &[usize],
    ) -> Conjunct {
        assert_eq!(map.len(), self.ncols());
        assert_eq!(map[0], 0);
        let new_ncols = 1 + new_space.n_named() + new_n_locals;
        let mut out = Conjunct {
            space: new_space.clone(),
            n_locals: new_n_locals,
            rows: Vec::new(),
            known_false: self.known_false,
        };
        if out.known_false {
            return out;
        }
        for r in &self.rows {
            let mut c = vec![0i64; new_ncols];
            for (j, &x) in r.c.iter().enumerate() {
                if x != 0 {
                    c[map[j]] = num::add(c[map[j]], x);
                }
            }
            out.push_row(Row::new(r.kind, c));
        }
        out
    }

    /// Substitutes column `col` := `expr_cols` / 1 (an affine combination of
    /// the *other* columns, given over the full current column layout with
    /// `expr_cols[col] == 0`). All rows are updated in place.
    pub(crate) fn substitute_col(&mut self, col: usize, expr_cols: &[i64]) {
        assert_eq!(expr_cols.len(), self.ncols());
        assert_eq!(
            expr_cols[col], 0,
            "substitution must not be self-referential"
        );
        if self.known_false {
            return;
        }
        let rows = std::mem::take(&mut self.rows);
        for mut r in rows {
            let k = r.c[col];
            if k != 0 {
                r.c[col] = 0;
                for (j, &e) in expr_cols.iter().enumerate() {
                    if e != 0 {
                        r.c[j] = num::add(r.c[j], num::mul(k, e));
                    }
                }
            }
            self.push_row(r);
        }
    }

    /// Substitutes set variable `v` := affine `expr` over the named columns.
    ///
    /// # Panics
    ///
    /// Panics if `expr` mentions variable `v` itself or has a different space.
    pub fn substitute_var(&mut self, v: usize, expr: &LinExpr) {
        assert_eq!(expr.space(), &self.space);
        assert_eq!(
            expr.var_coeff(v),
            0,
            "substitution must not mention the variable"
        );
        let mut cols = expr.raw_coeffs().to_vec();
        cols.resize(self.ncols(), 0);
        let col = self.var_col(v);
        self.substitute_col(col, &cols);
    }

    /// Removes local variables that appear in no row.
    pub(crate) fn compress_locals(&mut self) {
        if self.known_false || self.n_locals == 0 {
            return;
        }
        let named = 1 + self.space.n_named();
        let mut used = vec![false; self.n_locals];
        for r in &self.rows {
            for (l, &x) in r.c[named..].iter().enumerate() {
                if x != 0 {
                    used[l] = true;
                }
            }
        }
        if used.iter().all(|&u| u) {
            return;
        }
        let keep: Vec<usize> = (0..self.n_locals).filter(|&l| used[l]).collect();
        for r in &mut self.rows {
            let mut c = r.c[..named].to_vec();
            for &l in &keep {
                c.push(r.c[named + l]);
            }
            r.c = c.into();
        }
        self.n_locals = keep.len();
    }

    /// The public constraints of this conjunct that involve no locals,
    /// reconstructed as [`Constraint`] values.
    pub fn local_free_constraints(&self) -> Vec<Constraint> {
        let named = 1 + self.space.n_named();
        let mut out = Vec::new();
        for r in &self.rows {
            if r.c[named..].iter().all(|&x| x == 0) {
                let e = LinExpr::from_raw(&self.space, &r.c[..named]);
                out.push(match r.kind {
                    ConstraintKind::Eq => e.eq0(),
                    ConstraintKind::Geq => e.geq0(),
                });
            }
        }
        out
    }

    /// The congruence constraints of this conjunct: rows of the form
    /// `expr - m·α = 0` where local α appears in exactly that one row and the
    /// row has exactly one local. Returned as `(expr, modulus)` meaning
    /// `expr ≡ 0 (mod m)`, with `m > 1`.
    pub fn congruences(&self) -> Vec<(LinExpr, i64)> {
        let named = 1 + self.space.n_named();
        let mut uses = vec![0usize; self.n_locals];
        for r in &self.rows {
            for (l, &x) in r.c[named..].iter().enumerate() {
                if x != 0 {
                    uses[l] += 1;
                }
            }
        }
        let mut out = Vec::new();
        for r in &self.rows {
            if r.kind != ConstraintKind::Eq {
                continue;
            }
            let locals: Vec<usize> = (0..self.n_locals)
                .filter(|&l| r.c[named + l] != 0)
                .collect();
            if locals.len() == 1 && uses[locals[0]] == 1 {
                let m = r.c[named + locals[0]].abs();
                if m > 1 {
                    let e = LinExpr::from_raw(&self.space, &r.c[..named]);
                    out.push((e, m));
                }
            }
        }
        out
    }

    /// Converts the conjunct to a sorted canonical form for syntactic
    /// comparison and stable printing.
    pub(crate) fn canonicalize(&mut self) {
        self.canonicalize_congruence_rows();
        self.compress_locals();
        self.rows
            .sort_by(|a, b| (a.kind as u8, &a.c).cmp(&(b.kind as u8, &b.c)));
        self.rows.dedup();
    }

    /// Rewrites pure congruence rows (`expr + m·α = 0`, α in one row only)
    /// so that `m > 0` becomes the local's coefficient sign convention
    /// (`expr - m·α = 0`) and the constant is reduced into `[0, m)`.
    fn canonicalize_congruence_rows(&mut self) {
        let named = 1 + self.space.n_named();
        let mut uses = vec![0usize; self.n_locals];
        for r in &self.rows {
            for (l, &x) in r.c[named..].iter().enumerate() {
                if x != 0 {
                    uses[l] += 1;
                }
            }
        }
        for r in &mut self.rows {
            if r.kind != ConstraintKind::Eq {
                continue;
            }
            let locals: Vec<usize> = (0..self.n_locals)
                .filter(|&l| r.c[named + l] != 0)
                .collect();
            if locals.len() != 1 || uses[locals[0]] != 1 {
                continue;
            }
            let lc = named + locals[0];
            let m = r.c[lc].abs();
            if m <= 1 {
                continue;
            }
            // Flip so the non-local part has a canonical leading sign: make
            // the local coefficient -m (expr - m·α = 0 ⟺ expr ≡ 0 mod m).
            if r.c[lc] > 0 {
                for x in &mut r.c {
                    *x = -*x;
                }
            }
            // Reduce the constant into [0, m): α absorbs the shift.
            r.c[0] = num::mod_floor(r.c[0], m);
            // Also flip globally if the first non-zero named coefficient is
            // negative (keeps e.g. `i ≡ 1 mod 4` stable) — only safe when the
            // constant is zero after reduction or we re-reduce.
            if let Some(first) = r.c[1..named].iter().find(|&&x| x != 0) {
                if *first < 0 {
                    for x in &mut r.c {
                        *x = -*x;
                    }
                    r.c[0] = num::mod_floor(r.c[0], m);
                }
            }
        }
    }
}

impl fmt::Display for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.known_false {
            return write!(f, "FALSE");
        }
        if self.rows.is_empty() {
            return write!(f, "TRUE");
        }
        let named = 1 + self.space.n_named();
        let mut first = true;
        for r in &self.rows {
            if !first {
                write!(f, " && ")?;
            }
            first = false;
            // Render locals as `aK`.
            let mut s = String::new();
            let mut any = false;
            let push_term = |c: i64, name: &str, s: &mut String, any: &mut bool| {
                if c == 0 {
                    return;
                }
                if *any {
                    if c > 0 {
                        s.push_str(" + ");
                    } else {
                        s.push_str(" - ");
                    }
                    let a = c.abs();
                    if a != 1 {
                        s.push_str(&format!("{a}*"));
                    }
                    s.push_str(name);
                } else {
                    *any = true;
                    if c == 1 {
                        s.push_str(name);
                    } else if c == -1 {
                        s.push('-');
                        s.push_str(name);
                    } else {
                        s.push_str(&format!("{c}*"));
                        s.push_str(name);
                    }
                }
            };
            for v in 0..self.space.n_vars() {
                push_term(
                    r.c[1 + self.space.n_params() + v],
                    self.space.var_name(v),
                    &mut s,
                    &mut any,
                );
            }
            for p in 0..self.space.n_params() {
                push_term(r.c[1 + p], self.space.param_name(p), &mut s, &mut any);
            }
            for l in 0..self.n_locals {
                push_term(r.c[named + l], &format!("a{l}"), &mut s, &mut any);
            }
            let c0 = r.c[0];
            if !any {
                s.push_str(&c0.to_string());
            } else if c0 > 0 {
                s.push_str(&format!(" + {c0}"));
            } else if c0 < 0 {
                s.push_str(&format!(" - {}", -c0));
            }
            match r.kind {
                ConstraintKind::Eq => write!(f, "{s} = 0")?,
                ConstraintKind::Geq => write!(f, "{s} >= 0")?,
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Conjunct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Space {
        Space::new(&["n"], &["i", "j"])
    }

    fn v(s: &Space, i: usize) -> LinExpr {
        LinExpr::var(s, i)
    }

    #[test]
    fn universe_and_empty() {
        let s = sp();
        assert!(Conjunct::universe(&s).is_universe());
        assert!(Conjunct::empty(&s).is_known_false());
        assert!(!Conjunct::empty(&s).is_sat());
        assert!(Conjunct::universe(&s).is_sat());
    }

    #[test]
    fn normalization_divides_gcd() {
        let s = sp();
        // 2i - 4 >= 0  →  i - 2 >= 0
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&(v(&s, 0) * 2 - 4).geq0());
        assert_eq!(c.rows()[0].c[..4], [-2, 0, 1, 0]);
        // 3i - 4 >= 0  →  i - 2 >= 0 (floor tightening)
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&(v(&s, 0) * 3 - 4).geq0());
        assert_eq!(c.rows()[0].c[..4], [-2, 0, 1, 0]);
    }

    #[test]
    fn integer_infeasible_equality_detected() {
        let s = sp();
        // 2i - 1 = 0 has no integer solution
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&(v(&s, 0) * 2 - 1).eq0());
        assert!(c.is_known_false());
    }

    #[test]
    fn constant_rows_resolve() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&LinExpr::constant(&s, 5).geq0());
        assert!(c.is_universe());
        c.add_constraint(&LinExpr::constant(&s, -1).geq0());
        assert!(c.is_known_false());
    }

    #[test]
    fn contains_simple_box() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&v(&s, 0).geq0()); // i >= 0
        c.add_constraint(&v(&s, 0).leq(LinExpr::param(&s, 0) - 1)); // i < n
        assert!(c.contains(&[10], &[0, 99]));
        assert!(c.contains(&[10], &[9, -5]));
        assert!(!c.contains(&[10], &[10, 0]));
    }

    #[test]
    fn contains_with_stride() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_congruence(&v(&s, 0), 1, 4); // i ≡ 1 mod 4
        assert!(c.contains(&[0], &[1, 0]));
        assert!(c.contains(&[0], &[5, 0]));
        assert!(c.contains(&[0], &[-3, 0]));
        assert!(!c.contains(&[0], &[2, 0]));
    }

    #[test]
    fn intersect_merges_locals_independently() {
        let s = sp();
        let mut a = Conjunct::universe(&s);
        a.add_congruence(&v(&s, 0), 0, 2); // i even
        let mut b = Conjunct::universe(&s);
        b.add_congruence(&v(&s, 1), 0, 3); // j ≡ 0 mod 3
        let c = a.intersect(&b);
        assert_eq!(c.n_locals(), 2);
        assert!(c.contains(&[0], &[2, 3]));
        assert!(!c.contains(&[0], &[2, 4]));
        assert!(!c.contains(&[0], &[1, 3]));
    }

    #[test]
    fn substitute_var_interchange_style() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        // i <= j
        c.add_constraint(&v(&s, 0).leq(v(&s, 1)));
        // substitute i := n (degenerate loop value)
        c.substitute_var(0, &LinExpr::param(&s, 0));
        // now: n <= j
        assert!(c.contains(&[3], &[999, 3]));
        assert!(!c.contains(&[3], &[999, 2]));
    }

    #[test]
    fn congruences_extraction() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_congruence(&v(&s, 0), 1, 4);
        c.add_constraint(&v(&s, 1).geq0());
        let cg = c.congruences();
        assert_eq!(cg.len(), 1);
        assert_eq!(cg[0].1, 4);
    }

    #[test]
    fn canonicalize_reduces_congruence_constant() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_congruence(&v(&s, 0), 5, 4); // i ≡ 5 ≡ 1 (mod 4)
        c.canonicalize();
        let mut c2 = Conjunct::universe(&s);
        c2.add_congruence(&v(&s, 0), 1, 4);
        c2.canonicalize();
        assert_eq!(c, c2);
    }

    #[test]
    fn compress_locals_drops_unused() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        let _ = c.add_local();
        let _ = c.add_local();
        c.add_constraint(&v(&s, 0).geq0());
        c.compress_locals();
        assert_eq!(c.n_locals(), 0);
    }

    #[test]
    fn local_free_constraints_roundtrip() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&v(&s, 0).geq0());
        c.add_congruence(&v(&s, 1), 0, 2);
        let lf = c.local_free_constraints();
        assert_eq!(lf.len(), 1);
        assert_eq!(lf[0].to_string(), "i >= 0");
    }

    #[test]
    fn display_is_readable() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&(v(&s, 1) - 3).geq0());
        let txt = c.to_string();
        assert!(txt.contains("j - 3 >= 0"), "{txt}");
    }
}
