//! Process-wide memo tables: sharded concurrent caches shared by every
//! thread, used for exact Omega-test verdicts (tier 2) and for gist
//! results.
//!
//! The scanning recursion re-asks identical queries from many sibling
//! subtrees; with parallel scanning those siblings run on different worker
//! threads, so a thread-local table would re-solve each query once per
//! thread. Sharding by fingerprint keeps lock contention negligible (64
//! independent mutexes per cache), and eviction is bounded second-chance
//! instead of a full wipe: entries re-hit since the last sweep survive, so
//! the hot working set persists across evictions.
//!
//! **Only exact results are ever inserted.** A verdict or gist computed
//! under a tripped resource limit ([`crate::limits`]) depends on the
//! caller's `Limits`, while cache keys fingerprint only the query — so a
//! degraded value served to a later caller with a fresh budget would be a
//! wrong-but-confident answer (cache poisoning). Callers in
//! [`crate::sat`] and [`crate::gist`] enforce the policy at insertion
//! time; its payoff is that every cache hit can be reported as
//! [`crate::Certainty::Exact`] unconditionally.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;
use std::sync::{Mutex, OnceLock};

const SHARD_BITS: u32 = 6;
const SHARDS: usize = 1 << SHARD_BITS;

/// Pass-through hasher for keys that are already uniform 128-bit
/// fingerprints (splitmix-avalanched in `sat::cache_key` and
/// `gist::gist_key`). Re-hashing them with SipHash on every warm lookup
/// costs more than the probe itself; folding the two halves together
/// preserves their uniformity.
#[derive(Default)]
struct FpHasher(u64);

impl std::hash::Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by `(u64, u64)` keys, which call
        // `write_u64` twice).
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = self.0.rotate_left(32) ^ x;
    }
}

/// Exact satisfiability verdicts, keyed by a commutative row fingerprint.
/// Capacity matches the old thread-local cache.
pub(crate) static SAT: ShardedCache<bool> = ShardedCache::new((1 << 20) / SHARDS);

/// Gist results, keyed by an order-sensitive fingerprint of the
/// `(conjunct, context)` pair. Values are whole conjuncts, so the bound is
/// much smaller than the sat cache's.
pub(crate) static GIST: ShardedCache<crate::conjunct::Conjunct> =
    ShardedCache::new((1 << 14) / SHARDS);

struct Entry<V> {
    value: V,
    /// Second-chance bit: set on every hit, cleared (once) by a sweep.
    hot: bool,
}

type ShardMap<V> = HashMap<(u64, u64), Entry<V>, BuildHasherDefault<FpHasher>>;
type Shard<V> = Mutex<ShardMap<V>>;

/// A fixed-shard concurrent map with second-chance eviction. Lookups clone
/// the stored value, so `V` should be cheap to clone relative to the work
/// it memoizes.
pub(crate) struct ShardedCache<V> {
    shards: OnceLock<Box<[Shard<V>]>>,
    shard_capacity: usize,
}

impl<V: Clone> ShardedCache<V> {
    pub const fn new(shard_capacity: usize) -> ShardedCache<V> {
        ShardedCache {
            shards: OnceLock::new(),
            shard_capacity,
        }
    }

    fn shard(&self, key: (u64, u64)) -> &Shard<V> {
        let shards = self.shards.get_or_init(|| {
            (0..SHARDS)
                .map(|_| Mutex::new(HashMap::default()))
                .collect()
        });
        // The map's own hashing consumes the low bits; pick the shard from
        // the high bits of the independent second fingerprint half.
        &shards[(key.1 >> (64 - SHARD_BITS)) as usize]
    }

    pub fn lookup(&self, key: (u64, u64)) -> Option<V> {
        let mut map = lock(self.shard(key));
        let e = map.get_mut(&key)?;
        e.hot = true;
        Some(e.value.clone())
    }

    pub fn insert(&self, key: (u64, u64), value: V) {
        let mut map = lock(self.shard(key));
        if map.len() >= self.shard_capacity {
            sweep(&mut map);
        }
        map.insert(key, Entry { value, hot: false });
    }

    /// Empties every shard. Exposed (via `omega::reset_sat_cache`) for
    /// benchmarks that need cold-cache timings and for tests.
    pub fn clear(&self) {
        if let Some(shards) = self.shards.get() {
            for shard in shards.iter() {
                lock(shard).clear();
            }
        }
    }
}

fn lock<V>(shard: &Shard<V>) -> std::sync::MutexGuard<'_, ShardMap<V>> {
    // A panic while holding the lock leaves only a cache, never broken
    // invariants; ignore poisoning.
    shard.lock().unwrap_or_else(|e| e.into_inner())
}

/// Second-chance eviction: drop cold entries, demote hot ones. If the whole
/// shard is hot (every entry re-hit since the last sweep), fall back to
/// keeping every other entry so the sweep always frees space.
fn sweep<V, S>(map: &mut HashMap<(u64, u64), Entry<V>, S>) {
    let before = map.len();
    map.retain(|_, e| std::mem::replace(&mut e.hot, false));
    if map.len() == before {
        let mut keep = false;
        map.retain(|_, _| {
            keep = !keep;
            keep
        });
    }
    let evicted = (before - map.len()) as u64;
    crate::stats::bump!(evictions, evicted);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_and_survives_sweep_when_hot() {
        let mut map: HashMap<(u64, u64), Entry<bool>> = HashMap::new();
        for i in 0..100u64 {
            map.insert(
                (i, i),
                Entry {
                    value: true,
                    hot: i < 10, // first ten are hot
                },
            );
        }
        sweep(&mut map);
        assert_eq!(map.len(), 10);
        // Survivors were demoted: a second sweep with no hits in between
        // finds them all cold and drops them.
        sweep(&mut map);
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn all_hot_shard_still_frees_space() {
        let mut map: HashMap<(u64, u64), Entry<bool>> = HashMap::new();
        for i in 0..64u64 {
            map.insert(
                (i, i),
                Entry {
                    value: false,
                    hot: true,
                },
            );
        }
        sweep(&mut map);
        assert_eq!(map.len(), 32);
    }

    #[test]
    fn global_roundtrip() {
        let key = (0xdead_beef_0000_0001, 0xfeed_face_0000_0002);
        SAT.insert(key, false);
        assert_eq!(SAT.lookup(key), Some(false));
    }

    #[test]
    fn bounded_insertions_trigger_sweep() {
        let cache: ShardedCache<u64> = ShardedCache::new(8);
        // All keys map to one shard (same high bits of key.1): inserting
        // past capacity must evict rather than grow without bound.
        for i in 0..100u64 {
            cache.insert((i, i), i);
        }
        let shards = cache.shards.get().unwrap();
        assert!(shards.iter().all(|s| lock(s).len() <= 9));
    }
}
