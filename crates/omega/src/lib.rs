//! # omega — Presburger arithmetic for polyhedra scanning
//!
//! A from-scratch reimplementation of the parts of the **Omega+** library
//! (an updated Omega library; Kelly et al., UMD 1995; Pugh, CACM 1992) that
//! the CodeGen+ polyhedra scanner depends on:
//!
//! * integer sets over named parameters and set variables, with existential
//!   ("wildcard") variables encoding stride/modulo constraints,
//! * exact satisfiability via the **Omega test** (equality elimination,
//!   integer-tightened Fourier–Motzkin, dark shadow, splintering),
//! * the high-level operations the paper builds its scanning algorithms on:
//!   [`Set::project_out`] (Project), [`Set::gist`] (Gist, including the
//!   Chinese-remainder-style strength reduction of modulo constraints),
//!   [`Set::hull`] (approximate union hull with lattice detection), and
//!   [`Set::approximate`] (Approximate).
//!
//! # Examples
//!
//! ```
//! use omega::Set;
//! // The triangular iteration space of the paper's introduction:
//! let s = Set::parse("[n] -> { [i,j] : 0 <= i < n && 0 <= j < i }").unwrap();
//! assert!(s.contains(&[10], &[5, 3]));
//! assert!(!s.contains(&[10], &[5, 5]));
//! // Project away j: { [i] : 1 <= i < n } (i must dominate at least one j).
//! let p = s.project_out(1, 1);
//! assert!(p.contains(&[10], &[1, 0]));
//! assert!(!p.contains(&[10], &[0, 0]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arbitrary;
pub mod coeffs;
pub mod faults;
pub mod limits;
pub mod num;
pub mod par;
pub mod persist;
pub mod provenance;
pub mod stats;
pub mod trace;

mod bounds;
mod cache;
mod conjunct;
mod gist;
mod hull;
mod linexpr;
mod map;
mod parse;
mod project;
mod sat;
mod set;
mod space;
mod tier;

pub use bounds::VarBound;
pub use conjunct::Conjunct;
pub use limits::{Certainty, DegradeReasons, Limits, OmegaError};
pub use linexpr::{Constraint, ConstraintKind, LinExpr};
pub use map::AffineMap;
pub use parse::ParseSetError;
pub use set::{constant, param, var, Set};
pub use space::Space;

/// Empties the process-wide satisfiability memo cache.
///
/// Results are deterministic with or without the cache; this only matters
/// for benchmarks that want cold-cache timings and for tests isolating
/// cache behavior.
pub fn reset_sat_cache() {
    cache::SAT.clear();
    cache::GIST.clear();
}
