//! The Omega+ `Hull` operation: an approximate single-conjunct enclosure of
//! a union of conjuncts, preserving common stride (lattice) structure.

use crate::conjunct::{Conjunct, Row};
use crate::linexpr::ConstraintKind;
use crate::num;
use crate::set::Set;

/// Computes an approximate hull: a single conjunct containing every point of
/// `s`. Constraints are kept only when every conjunct of `s` implies them;
/// congruences over the same expression are merged into the coarsest common
/// lattice (e.g. `j ≡ i mod 4` ∪ `j ≡ i mod 6` → `j ≡ i mod 2`).
pub(crate) fn hull(s: &Set) -> Conjunct {
    let _span = crate::span!(hull, conjuncts = s.conjuncts().len());
    let space = s.space().clone();
    let live: Vec<Conjunct> = s
        .conjuncts()
        .iter()
        .filter(|c| c.is_sat())
        .map(crate::project::simplify_conjunct)
        .collect();
    if live.is_empty() {
        return Conjunct::empty(&space);
    }
    if live.len() == 1 {
        return crate::gist::drop_self_redundant(&live.into_iter().next().unwrap());
    }
    let named = 1 + space.n_named();

    // Candidate inequality constraints: every local-free row of every
    // conjunct (equalities contribute both directions).
    let mut candidates: Vec<Vec<i64>> = Vec::new();
    for c in &live {
        for r in c.rows() {
            if r.c[named..].iter().any(|&x| x != 0) {
                continue;
            }
            let base = r.c[..named].to_vec();
            match r.kind {
                ConstraintKind::Geq => candidates.push(base),
                ConstraintKind::Eq => {
                    if let Some(flipped) = base
                        .iter()
                        .map(|&x| x.checked_neg())
                        .collect::<Option<Vec<i64>>>()
                    {
                        candidates.push(flipped);
                    }
                    candidates.push(base);
                }
            }
        }
    }
    candidates.sort();
    candidates.dedup();

    // One scratch system per live conjunct, with a reserved trailing slot
    // for the negated candidate: each implication test is then a single
    // row overwrite plus a satisfiability query instead of a conjunct
    // clone per (conjunct, candidate) pair.
    let tests: Vec<(Vec<Row>, usize)> = live
        .iter()
        .map(|c| {
            let n_vars = c.ncols() - 1;
            let mut sys = c.rows().to_vec();
            sys.push(Row::new(ConstraintKind::Geq, vec![0; 1 + n_vars]));
            (sys, n_vars)
        })
        .collect();
    // Candidate tests are independent of each other (each only overwrites
    // its scratch slot), so with an intra-query thread budget they fan out
    // in fixed-size chunks — chunk boundaries don't depend on the budget,
    // and the flag vector is joined in candidate order, so the hull is
    // byte-identical at every thread count. Each worker clones the scratch
    // systems once per chunk; sequential runs keep the zero-clone loop.
    // Traced runs also keep it: the chunk decision reads the intra budget,
    // which CodeGen derives from its thread count, so letting it shape the
    // recorded spans would break trace-shape thread-count invariance
    // (map_ordered would run the chunks sequentially under a trace anyway).
    let implied: Vec<bool> = if crate::par::intra_threads() > 1
        && candidates.len() > 1
        && crate::trace::current().is_none()
    {
        const CHUNK: usize = 8;
        let chunks: Vec<Vec<Vec<i64>>> = candidates.chunks(CHUNK).map(<[_]>::to_vec).collect();
        crate::par::map_ordered(chunks, |chunk| {
            let mut scratch = tests.clone();
            chunk
                .iter()
                .map(|cand| implied_by_all(&mut scratch, cand))
                .collect::<Vec<bool>>()
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        let mut scratch = tests;
        candidates
            .iter()
            .map(|cand| implied_by_all(&mut scratch, cand))
            .collect()
    };
    let mut out = Conjunct::universe(&space);
    for (cand, implied) in candidates.into_iter().zip(implied) {
        if implied {
            let mut row = cand;
            row.resize(out.ncols(), 0);
            out.push_row(Row::new(ConstraintKind::Geq, row));
        }
    }

    apply_lattice(&mut out, &live, named, &space);
    out.canonicalize();
    // Drop dominated candidates (e.g. `v ≤ n` next to `v ≤ n-1`) so loop
    // bounds stay minimal.
    let out = crate::gist::drop_self_redundant(&out);
    // The hull must contain every input conjunct (checked when decidable).
    debug_assert!(live.iter().all(|c| {
        crate::set::Set::from_conjunct(c.clone())
            .try_is_subset(&crate::set::Set::from_conjunct(out.clone()))
            .unwrap_or(true)
    }));
    out
}

/// Is the candidate inequality implied by every scratch system? (Each test
/// overwrites the reserved trailing slot with the negated candidate and
/// asks for unsatisfiability.) An unnegatable candidate (i64-extremal
/// coefficients) is dropped: the hull only shrinks toward the bounding
/// box, which is sound.
fn implied_by_all(tests: &mut [(Vec<Row>, usize)], cand: &[i64]) -> bool {
    crate::sat::negate_geq(cand).is_some_and(|neg| {
        tests.iter_mut().all(|(sys, n_vars)| {
            let slot = sys.len() - 1;
            let mut neg = neg.clone();
            neg.resize(1 + *n_vars, 0);
            sys[slot] = Row::new(ConstraintKind::Geq, neg);
            !crate::sat::rows_satisfiable(sys, *n_vars)
        })
    })
}

/// Merges common congruence (lattice) structure from every live conjunct
/// into the hull.
fn apply_lattice(out: &mut Conjunct, live: &[Conjunct], named: usize, space: &crate::Space) {
    // Common lattice: group congruences by sign-normalized non-constant
    // part; the combined modulus is the gcd of all moduli and residue
    // differences.
    let groups = congruence_groups(live, named);
    for (w, entries) in groups {
        if entries.len() != live.len() {
            continue; // some conjunct lacks a congruence on this expression
        }
        let (r0, _) = entries[0];
        let mut g = 0i64;
        for &(r, m) in &entries {
            g = num::gcd(g, m);
            g = num::gcd(g, r - r0);
        }
        if g > 1 {
            let mut raw = vec![0i64; named];
            raw[0] = -num::mod_floor(r0, g);
            raw[1..].copy_from_slice(&w);
            let expr = crate::linexpr::LinExpr::from_raw(space, &raw);
            out.add_congruence(&expr, 0, g);
        }
    }
}

type Groups = Vec<(Vec<i64>, Vec<(i64, i64)>)>;

/// For each sign-normalized non-constant expression `w`, the list of
/// `(residue, modulus)` congruences, one entry per conjunct that has one.
fn congruence_groups(live: &[Conjunct], named: usize) -> Groups {
    let mut groups: Groups = Vec::new();
    for c in live {
        let mut seen_for_this: Vec<usize> = Vec::new();
        for (expr, m) in c.congruences() {
            let raw = expr.raw_coeffs();
            let mut w: Vec<i64> = raw[1..named].to_vec();
            let mut c0 = raw[0];
            if let Some(&first) = w.iter().find(|&&x| x != 0) {
                if first < 0 {
                    for x in &mut w {
                        *x = -*x;
                    }
                    c0 = -c0;
                }
            }
            let r = num::mod_floor(-c0, m);
            let idx = match groups.iter().position(|(gw, _)| gw == &w) {
                Some(i) => i,
                None => {
                    groups.push((w, Vec::new()));
                    groups.len() - 1
                }
            };
            // Only one congruence per conjunct per expression counts toward
            // the "every conjunct has one" requirement.
            if !seen_for_this.contains(&idx) {
                groups[idx].1.push((r, m));
                seen_for_this.push(idx);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(text: &str) -> Set {
        Set::parse(text).unwrap()
    }

    #[test]
    fn hull_single_conjunct_is_identity_like() {
        let s = set("{ [i,j] : 0 <= i <= 9 && j = i }");
        let h = s.hull();
        for i in -2..12 {
            for j in -2..12 {
                assert_eq!(
                    h.contains(&[], &[i, j]),
                    s.contains(&[], &[i, j]),
                    "i={i} j={j}"
                );
            }
        }
    }

    #[test]
    fn paper_hull_example() {
        // Hull({1<=i,j<=100 && ∃a(j=i+4a)} ∪ {1<=i<=50 && 1<=j<=200 && ∃a(j=i+6a)})
        //   = {1<=i<=100 && 1<=j<=200 && ∃a(j=i+2a)}
        let s = set(
            "{ [i,j] : 1 <= i <= 100 && 1 <= j <= 100 && exists(a : j = i + 4a) } \
             | { [i,j] : 1 <= i <= 50 && 1 <= j <= 200 && exists(a : j = i + 6a) }",
        );
        let h = s.hull();
        // Bounds stretched to the union's bounding box.
        assert!(h.contains(&[], &[100, 100]));
        assert!(h.contains(&[], &[1, 199]));
        assert!(!h.contains(&[], &[101, 101]));
        assert!(!h.contains(&[], &[0, 2]));
        assert!(!h.contains(&[], &[1, 201]));
        // Lattice: j - i even kept, odd excluded.
        assert!(h.contains(&[], &[2, 4]));
        assert!(!h.contains(&[], &[2, 5]));
        let cg = h.congruences();
        assert_eq!(cg.len(), 1);
        assert_eq!(cg[0].1, 2);
    }

    #[test]
    fn hull_contains_all_inputs() {
        let s = set("{ [i,j] : 0 <= i <= 4 && j = 0 } | { [i,j] : 10 <= i <= 14 && j = 1 }");
        let h = s.hull();
        for i in -2..20 {
            for j in -2..4 {
                if s.contains(&[], &[i, j]) {
                    assert!(h.contains(&[], &[i, j]), "hull must contain ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn hull_of_empty_is_false() {
        let s = set("{ [i,j] : i >= 1 && i <= 0 }");
        assert!(s.hull().is_known_false() || !s.hull().is_sat());
    }

    #[test]
    fn hull_merges_residues_into_common_lattice() {
        // i ≡ 1 mod 4  ∪  i ≡ 3 mod 4  →  i ≡ 1 mod 2
        let s = set("{ [i,j] : exists(a : i = 4a + 1) } | { [i,j] : exists(a : i = 4a + 3) }");
        let h = s.hull();
        let cg = h.congruences();
        assert_eq!(cg.len(), 1, "hull {h}");
        assert_eq!(cg[0].1, 2);
        assert!(h.contains(&[], &[3, 0]));
        assert!(!h.contains(&[], &[2, 0]));
    }

    #[test]
    fn hull_is_conjunct_of_valid_constraints() {
        // Paper Hull semantics: result includes all points; spot-check a
        // union with parameters.
        let s = Set::parse(
            "[n] -> { [i,j] : 1 <= i <= n && j = 0 } | [n] -> { [i,j] : 1 <= i <= n && j = 1 }",
        )
        .unwrap();
        let h = s.hull();
        assert!(h.contains(&[5], &[3, 0]));
        assert!(h.contains(&[5], &[3, 1]));
        assert!(!h.contains(&[5], &[6, 0]));
    }
}
