//! Replayable query provenance: tier-2 sat/gist queries dumped as `.omega`
//! text files that round-trip through the parser, so any slow or degraded
//! query found in a trace becomes a standalone, reproducible test case.
//!
//! # File format (`omega-replay v1`)
//!
//! A dump is UTF-8 text. Lines starting with `#` are comments except for
//! the directive lines below; blank lines are ignored.
//!
//! ```text
//! # omega-replay v1
//! # kind: sat
//! # expect: unsat
//! set: [n] -> { [x1,x2] : ... }
//! ```
//!
//! A sat dump replays by parsing `set:` and testing emptiness. A gist
//! dump carries three sets:
//!
//! ```text
//! # omega-replay v1
//! # kind: gist
//! a: { [i] : ... }
//! ctx: { [i] : ... }
//! expect: { [i] : ... }
//! ```
//!
//! and replays by recomputing `gist(a, ctx)` and comparing it with the
//! recorded result *modulo the context* — `gist` only promises
//! `gist(a,ctx) ∧ ctx = a ∧ ctx`, and representation-level differences
//! introduced by the parse round-trip can legitimately change which of
//! two mutually redundant rows survives.
//!
//! Dumps are produced automatically when a [`crate::trace::Collector`]
//! with [`crate::trace::Collector::dump_queries`] enabled is installed
//! (see `table1 --dump-dir`), and replayed with the `omega-replay` binary
//! or [`replay_str`] / [`replay_file`].

use crate::conjunct::{Conjunct, Row};
use crate::set::Set;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of query a dump records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DumpKind {
    /// A tier-2 satisfiability query (`expect: sat|unsat`).
    Sat,
    /// A tier-2 (uncached) gist computation.
    Gist,
}

impl fmt::Display for DumpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DumpKind::Sat => "sat",
            DumpKind::Gist => "gist",
        })
    }
}

/// The outcome of replaying one dump.
#[derive(Clone, Debug)]
pub struct Replayed {
    /// The dump's kind.
    pub kind: DumpKind,
    /// The verdict recorded at dump time (`sat`/`unsat`, or a set).
    pub expected: String,
    /// The verdict recomputed by the replay.
    pub got: String,
    /// True when the replayed verdict matches the recorded one.
    pub matched: bool,
}

/// Why a dump could not be replayed.
#[derive(Debug)]
pub enum ReplayError {
    /// Reading the dump file failed.
    Io(io::Error),
    /// The dump text is not a valid `omega-replay v1` document.
    Malformed(String),
    /// A set line failed to parse.
    Parse(crate::ParseSetError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "io error: {e}"),
            ReplayError::Malformed(m) => write!(f, "malformed dump: {m}"),
            ReplayError::Parse(e) => write!(f, "parse error: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<io::Error> for ReplayError {
    fn from(e: io::Error) -> ReplayError {
        ReplayError::Io(e)
    }
}

impl From<crate::ParseSetError> for ReplayError {
    fn from(e: crate::ParseSetError) -> ReplayError {
        ReplayError::Parse(e)
    }
}

// ---------------------------------------------------------------------------
// Dump rendering
// ---------------------------------------------------------------------------

/// Renders a tier-2 sat query (raw solver rows over `n_vars` existential
/// columns) as a replayable dump. The rows become set variables
/// `x1..xn` — satisfiability of the rows is exactly non-emptiness of the
/// parsed set. `verdict` is `None` for a degraded query (the governor
/// answered conservatively): the dump records `expect: unknown`, which
/// replays without a pass/fail judgement.
pub(crate) fn sat_dump_text(rows: &[Row], n_vars: usize, verdict: Option<bool>) -> String {
    let names: Vec<String> = (1..=n_vars).map(|i| format!("x{i}")).collect();
    let mut cons: Vec<String> = Vec::new();
    for r in rows {
        if r.is_constant() {
            continue;
        }
        cons.push(render_row(r, &names));
    }
    if cons.is_empty() {
        cons.push("0 = 0".to_owned());
    }
    format!(
        "# omega-replay v1\n# kind: sat\n# expect: {}\nset: {{ [{}] : {} }}\n",
        match verdict {
            Some(true) => "sat",
            Some(false) => "unsat",
            None => "unknown",
        },
        names.join(","),
        cons.join(" && "),
    )
}

/// Renders one solver row (`[const, x1..xn]`) in the parser's syntax.
fn render_row(r: &Row, names: &[String]) -> String {
    let mut s = String::new();
    let mut any = false;
    for (v, name) in names.iter().enumerate() {
        let c = r.c[1 + v];
        if c == 0 {
            continue;
        }
        if any {
            s.push_str(if c > 0 { " + " } else { " - " });
            let a = c.abs();
            if a != 1 {
                s.push_str(&format!("{a}*"));
            }
            s.push_str(name);
        } else {
            any = true;
            if c == 1 {
                s.push_str(name);
            } else {
                s.push_str(&format!("{c}*{name}"));
            }
        }
    }
    let c0 = r.c[0];
    if !any {
        s.push_str(&c0.to_string());
    } else if c0 > 0 {
        s.push_str(&format!(" + {c0}"));
    } else if c0 < 0 {
        s.push_str(&format!(" - {}", -c0));
    }
    match r.kind {
        crate::linexpr::ConstraintKind::Eq => format!("{s} = 0"),
        crate::linexpr::ConstraintKind::Geq => format!("{s} >= 0"),
    }
}

/// Renders a tier-2 gist computation as a replayable dump.
pub(crate) fn gist_dump_text(a: &Conjunct, ctx: &Conjunct, result: &Conjunct) -> String {
    let a = Set::from_conjunct(a.clone());
    let ctx = Set::from_conjunct(ctx.clone());
    let result = Set::from_conjunct(result.clone());
    format!(
        "# omega-replay v1\n# kind: gist\na: {}\nctx: {}\nexpect: {}\n",
        a.to_input_syntax(),
        ctx.to_input_syntax(),
        result.to_input_syntax(),
    )
}

/// Writes `text` as `<dir>/<stem>.omega`, creating `dir` if needed, and
/// returns the path.
pub(crate) fn write_dump(dir: &Path, stem: &str, text: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.omega"));
    fs::write(&path, text)?;
    Ok(path)
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Replays a dump document, recomputing its verdict from scratch.
///
/// # Errors
///
/// Returns a [`ReplayError`] when the document is malformed or a set line
/// fails to parse.
pub fn replay_str(text: &str) -> Result<Replayed, ReplayError> {
    let mut kind: Option<DumpKind> = None;
    let mut expect_sat: Option<&str> = None;
    let mut set_line: Option<&str> = None;
    let mut a_line: Option<&str> = None;
    let mut ctx_line: Option<&str> = None;
    let mut expect_line: Option<&str> = None;
    let mut versioned = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if rest.starts_with("omega-replay") {
                if rest != "omega-replay v1" {
                    return Err(ReplayError::Malformed(format!(
                        "unsupported version line: {rest}"
                    )));
                }
                versioned = true;
            } else if let Some(k) = rest.strip_prefix("kind:") {
                kind = Some(match k.trim() {
                    "sat" => DumpKind::Sat,
                    "gist" => DumpKind::Gist,
                    other => return Err(ReplayError::Malformed(format!("unknown kind: {other}"))),
                });
            } else if let Some(e) = rest.strip_prefix("expect:") {
                expect_sat = Some(e.trim());
            }
            // Other comment lines are free-form.
            continue;
        }
        if let Some(v) = line.strip_prefix("set:") {
            set_line = Some(v.trim());
        } else if let Some(v) = line.strip_prefix("a:") {
            a_line = Some(v.trim());
        } else if let Some(v) = line.strip_prefix("ctx:") {
            ctx_line = Some(v.trim());
        } else if let Some(v) = line.strip_prefix("expect:") {
            expect_line = Some(v.trim());
        } else {
            return Err(ReplayError::Malformed(format!("unrecognized line: {line}")));
        }
    }
    if !versioned {
        return Err(ReplayError::Malformed(
            "missing '# omega-replay v1' header".to_owned(),
        ));
    }
    match kind {
        Some(DumpKind::Sat) => {
            let expected = expect_sat
                .ok_or_else(|| ReplayError::Malformed("sat dump missing '# expect:'".into()))?;
            if expected != "sat" && expected != "unsat" && expected != "unknown" {
                return Err(ReplayError::Malformed(format!(
                    "sat dump expects 'sat', 'unsat' or 'unknown', got '{expected}'"
                )));
            }
            let set = Set::parse(
                set_line.ok_or_else(|| ReplayError::Malformed("sat dump missing 'set:'".into()))?,
            )?;
            let got = if set.is_empty() { "unsat" } else { "sat" };
            Ok(Replayed {
                kind: DumpKind::Sat,
                expected: expected.to_owned(),
                got: got.to_owned(),
                // A degraded dump carries no verdict to check against —
                // replaying it just reproduces the computation.
                matched: expected == "unknown" || got == expected,
            })
        }
        Some(DumpKind::Gist) => {
            let a = Set::parse(
                a_line.ok_or_else(|| ReplayError::Malformed("gist dump missing 'a:'".into()))?,
            )?;
            let ctx = Set::parse(
                ctx_line
                    .ok_or_else(|| ReplayError::Malformed("gist dump missing 'ctx:'".into()))?,
            )?;
            let expected =
                Set::parse(expect_line.ok_or_else(|| {
                    ReplayError::Malformed("gist dump missing 'expect:'".into())
                })?)?;
            let recomputed = a.gist(&ctx);
            // Compare modulo the context: that is the property `gist`
            // actually promises (see module docs). The subset test is
            // undecidable for some existential constraint groups (their
            // complement is not a finite union of conjuncts); an
            // undecidable direction cannot refute the replay, so it
            // counts as a match rather than an error.
            let lhs = recomputed.intersect(&ctx);
            let rhs = expected.intersect(&ctx);
            let matched =
                lhs.try_is_subset(&rhs).unwrap_or(true) && rhs.try_is_subset(&lhs).unwrap_or(true);
            Ok(Replayed {
                kind: DumpKind::Gist,
                expected: expected.to_input_syntax(),
                got: recomputed.to_input_syntax(),
                matched,
            })
        }
        None => Err(ReplayError::Malformed("missing '# kind:' line".to_owned())),
    }
}

/// Replays a dump file (see [`replay_str`]).
///
/// # Errors
///
/// Propagates I/O errors reading `path` plus every [`replay_str`] error.
pub fn replay_file(path: &Path) -> Result<Replayed, ReplayError> {
    replay_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::ConstraintKind;

    fn geq(c: &[i64]) -> Row {
        Row::new(ConstraintKind::Geq, c.to_vec())
    }
    fn eq(c: &[i64]) -> Row {
        Row::new(ConstraintKind::Eq, c.to_vec())
    }

    #[test]
    fn sat_dump_round_trips_sat() {
        // 0 <= x <= 10: satisfiable.
        let rows = vec![geq(&[0, 1]), geq(&[10, -1])];
        let text = sat_dump_text(&rows, 1, Some(true));
        let r = replay_str(&text).expect("replay");
        assert_eq!(r.kind, DumpKind::Sat);
        assert!(r.matched, "expected {}, got {}", r.expected, r.got);
    }

    #[test]
    fn sat_dump_round_trips_unsat() {
        // Pugh's dark-shadow example: rationally feasible, no integer point.
        let rows = vec![
            geq(&[-27, 11, 13]),
            geq(&[45, -11, -13]),
            geq(&[10, 7, -9]),
            geq(&[4, -7, 9]),
        ];
        let text = sat_dump_text(&rows, 2, Some(false));
        assert!(text.contains("# expect: unsat"));
        let r = replay_str(&text).expect("replay");
        assert!(r.matched, "expected {}, got {}", r.expected, r.got);
    }

    #[test]
    fn sat_dump_with_equalities() {
        // 3x + 5y = 1 has integer solutions.
        let rows = vec![eq(&[-1, 3, 5])];
        let r = replay_str(&sat_dump_text(&rows, 2, Some(true))).expect("replay");
        assert!(r.matched);
        // 6x + 9y = 1 does not.
        let rows = vec![eq(&[-1, 6, 9])];
        let r = replay_str(&sat_dump_text(&rows, 2, Some(false))).expect("replay");
        assert!(r.matched);
    }

    #[test]
    fn mismatched_verdict_is_reported() {
        let rows = vec![geq(&[0, 1]), geq(&[10, -1])];
        let text = sat_dump_text(&rows, 1, Some(false)); // wrong on purpose
        let r = replay_str(&text).expect("replay");
        assert!(!r.matched);
        assert_eq!(r.expected, "unsat");
        assert_eq!(r.got, "sat");
    }

    #[test]
    fn gist_dump_round_trips() {
        let a = Set::parse("[n] -> { [i] : 0 <= i < n && i >= 2 }").unwrap();
        let ctx = Set::parse("[n] -> { [i] : 0 <= i < n }").unwrap();
        let g = a.gist(&ctx);
        let text = gist_dump_text(
            a.as_single_conjunct().unwrap(),
            ctx.as_single_conjunct().unwrap(),
            g.as_single_conjunct().unwrap(),
        );
        let r = replay_str(&text).expect("replay");
        assert_eq!(r.kind, DumpKind::Gist);
        assert!(r.matched, "expected {}, got {}", r.expected, r.got);
    }

    #[test]
    fn malformed_dumps_error() {
        assert!(matches!(
            replay_str("set: { [x] : x >= 0 }"),
            Err(ReplayError::Malformed(_))
        ));
        assert!(matches!(
            replay_str("# omega-replay v1\nset: { [x] : x >= 0 }"),
            Err(ReplayError::Malformed(_))
        ));
        assert!(matches!(
            replay_str("# omega-replay v1\n# kind: sat\n# expect: sat\nset: not a set"),
            Err(ReplayError::Parse(_))
        ));
    }
}
