//! Tiers 0 and 1 of the satisfiability pipeline — cheap, sound filters that
//! answer the easy majority of queries before the exact Omega test runs.
//!
//! Polyhedra scanning issues the same *shape* of query thousands of times:
//! "is `ctx ∧ ¬row` empty?" (an implication test from gist / hull / subset
//! checks). Most of these are decided by looking at the rows syntactically
//! (tier 0) or by propagating per-variable intervals to a fixpoint (tier 1);
//! only the residue needs Fourier–Motzkin with dark shadows and splinters.
//!
//! Soundness contract: a tier may answer [`Verdict::Unknown`] freely, but a
//! `Sat` / `Unsat` answer must be *exact* — the caller treats it as final and
//! never consults the Omega test.

use crate::conjunct::Row;
use crate::linexpr::ConstraintKind;
use std::collections::HashMap;

/// Three-valued answer of a fast satisfiability tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Verdict {
    /// The system certainly has an integer point.
    Sat,
    /// The system certainly has no integer point.
    Unsat,
    /// This tier cannot tell; fall through to the next one.
    Unknown,
}

/// Bound magnitudes beyond this are treated as unbounded: they cannot
/// influence a verdict on the i64-coefficient systems this crate builds, and
/// capping them keeps all interval arithmetic comfortably inside `i128`.
const BOUND_CAP: i128 = 1 << 96;

/// Propagation rounds before tier 1 gives up. Real queries reach a fixpoint
/// in a handful of rounds; the cap bounds pathological ping-ponging chains.
const MAX_ROUNDS: usize = 16;

/// Tier 0: purely syntactic contradiction detection on normalized rows.
///
/// Every row `w·x + c ≥ 0` (or `= 0`) is read as a bound on the *term*
/// `t = v·x`, where `v` is `w` with its sign canonicalized (first non-zero
/// coefficient positive). Collecting the tightest lower and upper bound per
/// distinct term catches, in one pass:
///
/// - negated pairs `w·x + c₁ ≥ 0` and `-w·x + c₂ ≥ 0` with `c₁ + c₂ < 0`;
/// - equalities pinning the same term to two different values;
/// - an equality outside the interval the inequalities allow;
/// - single-variable bound contradictions (`x ≥ 5` with `x ≤ 3`).
///
/// Rows must already be normalized (gcd 1 on the variable columns), which
/// makes the interval-emptiness test exact: a gcd-1 term assumes every
/// integer value, so `lo > hi` is the only way the bounds can clash.
///
/// Typical scanning queries have a dozen rows, where an allocation-free
/// pairwise scan beats building a hash map; large systems fall back to the
/// hashed single pass.
pub(crate) fn tier0(rows: &[Row]) -> Verdict {
    if rows.len() <= PAIRWISE_LIMIT {
        tier0_pairwise(rows)
    } else {
        tier0_hashed(rows)
    }
}

const PAIRWISE_LIMIT: usize = 24;

/// Signed bounds `(lo, hi)` a row places on its canonical-sign term.
fn term_bounds(r: &Row, sign: i64) -> (i128, i128) {
    let c = r.c[0] as i128;
    match (r.kind, sign) {
        (ConstraintKind::Eq, _) => {
            let v = -(sign as i128) * c;
            (v, v)
        }
        (ConstraintKind::Geq, 1) => (-c, BOUND_CAP),
        (ConstraintKind::Geq, _) => (-BOUND_CAP, c),
    }
}

/// Sign that canonicalizes a row's variable coefficients, or `None` for a
/// constant row.
fn term_sign(r: &Row) -> Option<i64> {
    match r.c[1..].iter().find(|&&x| x != 0) {
        Some(&x) if x < 0 => Some(-1),
        Some(_) => Some(1),
        None => None,
    }
}

/// Do two rows constrain the same term (up to sign canonicalization)?
fn same_term(a: &Row, sa: i64, b: &Row, sb: i64) -> bool {
    if sa == sb {
        a.c[1..] == b.c[1..]
    } else {
        a.c.len() == b.c.len() && a.c[1..].iter().zip(&b.c[1..]).all(|(&x, &y)| x == -y)
    }
}

fn tier0_pairwise(rows: &[Row]) -> Verdict {
    for (i, a) in rows.iter().enumerate() {
        let Some(sa) = term_sign(a) else { continue };
        let (mut lo, mut hi) = term_bounds(a, sa);
        for b in &rows[i + 1..] {
            let Some(sb) = term_sign(b) else { continue };
            if !same_term(a, sa, b, sb) {
                continue;
            }
            let (bl, bh) = term_bounds(b, sb);
            lo = lo.max(bl);
            hi = hi.min(bh);
            if lo > hi {
                return Verdict::Unsat;
            }
        }
    }
    Verdict::Unknown
}

fn tier0_hashed(rows: &[Row]) -> Verdict {
    let mut bounds: HashMap<Vec<i64>, (i128, i128)> = HashMap::with_capacity(rows.len());
    let mut flipped: Vec<i64> = Vec::new();
    for r in rows {
        let Some(sign) = term_sign(r) else {
            continue; // constant rows were filtered by the caller
        };
        let w = &r.c[1..];
        let key: &[i64] = if sign == 1 {
            w
        } else {
            flipped.clear();
            flipped.extend(w.iter().map(|&x| -x));
            &flipped
        };
        // w·x + c ≥ 0  ⇒  sign · t ≥ -c : a lower bound on the canonical
        // term t when sign = +1, an upper bound when sign = -1. Equalities
        // bound both sides.
        let (lo, hi) = term_bounds(r, sign);
        if !bounds.contains_key(key) {
            // Own the key only on first sight of the term.
            bounds.insert(key.to_vec(), (-BOUND_CAP, BOUND_CAP));
        }
        let entry = bounds.get_mut(key).expect("just inserted");
        entry.0 = entry.0.max(lo);
        entry.1 = entry.1.min(hi);
        if entry.0 > entry.1 {
            return Verdict::Unsat;
        }
    }
    Verdict::Unknown
}

/// Tier 1: interval (bounds-consistency) propagation plus a witness probe.
///
/// Maintains a per-variable integer interval, repeatedly tightening each
/// variable against every row under the current intervals of the *other*
/// variables. An empty interval proves `Unsat` (interval reasoning is a
/// relaxation, so emptiness is exact). Satisfiability cannot be concluded
/// from non-empty intervals alone, so tier 1 additionally evaluates a few
/// candidate points inside the box; any point satisfying every row proves
/// `Sat` outright (all variables are existential).
pub(crate) fn tier1(rows: &[Row], ncols: usize) -> Verdict {
    let mut lo = vec![None::<i128>; ncols];
    let mut hi = vec![None::<i128>; ncols];
    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for r in rows {
            match tighten(r, &mut lo, &mut hi) {
                Tighten::Contradiction => return Verdict::Unsat,
                Tighten::Changed => changed = true,
                Tighten::Fixed => {}
            }
        }
        if !changed {
            break;
        }
    }
    if witness(rows, &lo, &hi) {
        return Verdict::Sat;
    }
    Verdict::Unknown
}

enum Tighten {
    Changed,
    Fixed,
    Contradiction,
}

/// One bounds-consistency step: for every variable in `r`, derive the bound
/// implied by the extremal values the remaining terms can take.
fn tighten(r: &Row, lo: &mut [Option<i128>], hi: &mut [Option<i128>]) -> Tighten {
    let mut changed = false;
    for j in 1..r.c.len() {
        let a = r.c[j];
        if a == 0 {
            continue;
        }
        // w·x + c ≥ 0  ⇒  a·xⱼ ≥ -c - max(Σ_{k≠j} aₖ·xₖ); for equalities the
        // mirrored bound via the minimum of the rest also holds.
        if let Some(rest_max) = rest_extreme(r, j, lo, hi, true) {
            let rhs = -(r.c[0] as i128) - rest_max;
            let new = if a > 0 {
                Bound::Lower(div_ceil(rhs, a as i128))
            } else {
                Bound::Upper(div_floor(-rhs, -a as i128))
            };
            match apply(new, &mut lo[j], &mut hi[j]) {
                Applied::Contradiction => return Tighten::Contradiction,
                Applied::Changed => changed = true,
                Applied::Fixed => {}
            }
        }
        if r.kind == ConstraintKind::Eq {
            if let Some(rest_min) = rest_extreme(r, j, lo, hi, false) {
                let rhs = -(r.c[0] as i128) - rest_min;
                let new = if a > 0 {
                    Bound::Upper(div_floor(rhs, a as i128))
                } else {
                    Bound::Lower(div_ceil(-rhs, -a as i128))
                };
                match apply(new, &mut lo[j], &mut hi[j]) {
                    Applied::Contradiction => return Tighten::Contradiction,
                    Applied::Changed => changed = true,
                    Applied::Fixed => {}
                }
            }
        }
    }
    if changed {
        Tighten::Changed
    } else {
        Tighten::Fixed
    }
}

enum Bound {
    Lower(i128),
    Upper(i128),
}

enum Applied {
    Changed,
    Fixed,
    Contradiction,
}

fn apply(b: Bound, lo: &mut Option<i128>, hi: &mut Option<i128>) -> Applied {
    let changed = match b {
        Bound::Lower(v) if v.abs() < BOUND_CAP => match *lo {
            Some(old) if old >= v => false,
            _ => {
                *lo = Some(v);
                true
            }
        },
        Bound::Upper(v) if v.abs() < BOUND_CAP => match *hi {
            Some(old) if old <= v => false,
            _ => {
                *hi = Some(v);
                true
            }
        },
        _ => false, // magnitude past the cap: treat as unbounded
    };
    match (*lo, *hi) {
        (Some(l), Some(h)) if l > h => Applied::Contradiction,
        _ if changed => Applied::Changed,
        _ => Applied::Fixed,
    }
}

/// Extremal value of `Σ_{k≠j} aₖ·xₖ` under the current intervals — the
/// maximum when `want_max`, otherwise the minimum. `None` when some needed
/// bound is missing.
fn rest_extreme(
    r: &Row,
    j: usize,
    lo: &[Option<i128>],
    hi: &[Option<i128>],
    want_max: bool,
) -> Option<i128> {
    let mut acc: i128 = 0;
    for k in 1..r.c.len() {
        let a = r.c[k];
        if k == j || a == 0 {
            continue;
        }
        let pick_hi = (a > 0) == want_max;
        let v = if pick_hi { hi[k]? } else { lo[k]? };
        acc = acc.checked_add((a as i128).checked_mul(v)?)?;
    }
    Some(acc)
}

/// Tries a few concrete points inside the interval box; any one of them
/// satisfying every row proves the system satisfiable.
fn witness(rows: &[Row], lo: &[Option<i128>], hi: &[Option<i128>]) -> bool {
    // Candidate 1: zero clamped into each interval — the common case where
    // the polyhedron contains (a translate of) the origin.
    // Candidate 2: each variable at its lower bound (upper when only an
    // upper bound exists) — catches boxes far from the origin.
    let clamped: Vec<i128> = lo
        .iter()
        .zip(hi)
        .map(|(&l, &h)| 0.clamp(l.unwrap_or(i128::MIN), h.unwrap_or(i128::MAX)))
        .collect();
    if satisfies_all(rows, &clamped) {
        return true;
    }
    let corner: Vec<i128> = lo
        .iter()
        .zip(hi)
        .map(|(&l, &h)| l.or(h).unwrap_or(0))
        .collect();
    corner != clamped && satisfies_all(rows, &corner)
}

fn satisfies_all(rows: &[Row], point: &[i128]) -> bool {
    rows.iter().all(|r| {
        let mut v = r.c[0] as i128;
        for (j, &a) in r.c.iter().enumerate().skip(1) {
            if a != 0 {
                v = match (a as i128)
                    .checked_mul(point[j])
                    .and_then(|t| v.checked_add(t))
                {
                    Some(v) => v,
                    None => return false,
                };
            }
        }
        match r.kind {
            ConstraintKind::Eq => v == 0,
            ConstraintKind::Geq => v >= 0,
        }
    })
}

fn div_floor(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a < 0 {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b > 0);
    let q = a / b;
    if a % b != 0 && a > 0 {
        q + 1
    } else {
        q
    }
}

/// Differential property suite: on randomized systems, any `Sat`/`Unsat`
/// a tier returns must match the exact Omega test run with the tiers and
/// the cache bypassed. `Unknown` is always acceptable — the tiers are
/// filters, not decision procedures — but a definite answer may never
/// disagree with the oracle.
#[cfg(test)]
mod differential {
    use super::*;
    use proptest::prelude::*;

    /// Random small systems over three variables. Coefficients are kept
    /// small so the exact solve is fast at 512 cases per property; the
    /// shapes still exercise negated pairs, equality pinning, transitive
    /// chains, and integer-only-infeasible rows.
    fn rows_strategy() -> impl Strategy<Value = Vec<Row>> {
        let row = (
            prop::bool::weighted(0.7),
            -9i64..=9,
            -4i64..=4,
            -4i64..=4,
            -4i64..=4,
        );
        prop::collection::vec(row, 1..8).prop_map(|raw| {
            let mut rows = Vec::new();
            for (geq, c0, a, b, c) in raw {
                let kind = if geq {
                    ConstraintKind::Geq
                } else {
                    ConstraintKind::Eq
                };
                let mut r = Row::new(kind, vec![c0, a, b, c]);
                // The tiers' precondition: normalized, non-constant rows
                // (the pipeline filters constants before the tiers run).
                if r.normalize() && !r.is_constant() {
                    rows.push(r);
                }
            }
            rows
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn tier0_never_contradicts_exact(rows in rows_strategy()) {
            if rows.is_empty() {
                return Ok(());
            }
            if tier0(&rows) == Verdict::Unsat {
                prop_assert!(
                    !crate::sat::exact_satisfiable(&rows, 3),
                    "tier0 said Unsat on a satisfiable system: {rows:?}"
                );
            }
        }

        #[test]
        fn tier1_never_contradicts_exact(rows in rows_strategy()) {
            if rows.is_empty() {
                return Ok(());
            }
            let exact = crate::sat::exact_satisfiable(&rows, 3);
            match tier1(&rows, 4) {
                Verdict::Sat => prop_assert!(
                    exact,
                    "tier1 said Sat on an unsatisfiable system: {rows:?}"
                ),
                Verdict::Unsat => prop_assert!(
                    !exact,
                    "tier1 said Unsat on a satisfiable system: {rows:?}"
                ),
                Verdict::Unknown => {}
            }
        }

        #[test]
        fn full_pipeline_matches_exact(rows in rows_strategy()) {
            if rows.is_empty() {
                return Ok(());
            }
            // End-to-end: tiers + canonicalization + cache must be
            // invisible — the public entry point agrees with the oracle.
            prop_assert_eq!(
                crate::sat::rows_satisfiable(&rows, 3),
                crate::sat::exact_satisfiable(&rows, 3),
                "pipeline verdict diverged on {:?}", rows
            );
        }

        #[test]
        fn starved_pipeline_is_a_sound_overapproximation(rows in rows_strategy()) {
            if rows.is_empty() {
                return Ok(());
            }
            // Under an artificially tiny budget the pipeline may degrade,
            // but only ever toward "satisfiable": a `false` answer must
            // still agree with the unstarved oracle, and degraded verdicts
            // must never poison the cache for a later full-budget query.
            let tiny = crate::limits::Limits {
                budget: 4,
                max_depth: 2,
                row_cap: 6,
                ..crate::limits::Limits::default()
            };
            let (starved, _cert) = crate::limits::with_limits(tiny, || {
                crate::sat::rows_satisfiable(&rows, 3)
            });
            let exact = crate::sat::exact_satisfiable(&rows, 3);
            if !starved {
                prop_assert!(
                    !exact,
                    "starved pipeline said Unsat on a satisfiable system: {rows:?}"
                );
            }
            // A fresh full-budget query is exact even right after the
            // starved one (degraded answers are never cached).
            prop_assert_eq!(
                crate::sat::rows_satisfiable(&rows, 3),
                exact,
                "full-budget verdict corrupted by earlier starved query on {:?}", rows
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geq(c: &[i64]) -> Row {
        Row::new(ConstraintKind::Geq, c.to_vec())
    }
    fn eq(c: &[i64]) -> Row {
        Row::new(ConstraintKind::Eq, c.to_vec())
    }

    #[test]
    fn tier0_negated_pair() {
        // x + y ≥ 5 and x + y ≤ 3
        let rows = [geq(&[-5, 1, 1]), geq(&[3, -1, -1])];
        assert_eq!(tier0(&rows), Verdict::Unsat);
        // compatible versions stay unknown
        let rows = [geq(&[-5, 1, 1]), geq(&[7, -1, -1])];
        assert_eq!(tier0(&rows), Verdict::Unknown);
    }

    #[test]
    fn tier0_conflicting_equalities() {
        let rows = [eq(&[-3, 1, 1]), eq(&[-4, 1, 1])];
        assert_eq!(tier0(&rows), Verdict::Unsat);
        let rows = [eq(&[-3, 1, 1]), eq(&[3, -1, -1])];
        assert_eq!(tier0(&rows), Verdict::Unknown); // same constraint, flipped
    }

    #[test]
    fn tier0_equality_outside_inequality_window() {
        // x = 10 but x ≤ 7
        let rows = [eq(&[-10, 1]), geq(&[7, -1])];
        assert_eq!(tier0(&rows), Verdict::Unsat);
    }

    #[test]
    fn tier0_single_variable_bounds() {
        let rows = [geq(&[-5, 1]), geq(&[3, -1])]; // 5 ≤ x ≤ 3
        assert_eq!(tier0(&rows), Verdict::Unsat);
        let rows = [geq(&[-3, 1]), geq(&[5, -1])]; // 3 ≤ x ≤ 5
        assert_eq!(tier0(&rows), Verdict::Unknown);
    }

    #[test]
    fn tier1_transitive_bounds() {
        // x ≥ 10, y ≥ x, 5 ≥ y: needs one propagation step.
        let rows = [geq(&[-10, 1, 0]), geq(&[0, -1, 1]), geq(&[5, 0, -1])];
        assert_eq!(tier1(&rows, 3), Verdict::Unsat);
    }

    #[test]
    fn tier1_witness_origin() {
        // -5 ≤ x ≤ 5, -5 ≤ y ≤ 5, x + y ≥ -3: origin satisfies everything.
        let rows = [
            geq(&[5, 1, 0]),
            geq(&[5, -1, 0]),
            geq(&[5, 0, 1]),
            geq(&[5, 0, -1]),
            geq(&[3, 1, 1]),
        ];
        assert_eq!(tier1(&rows, 3), Verdict::Sat);
    }

    #[test]
    fn tier1_witness_corner() {
        // 100 ≤ x ≤ 100, y = x: corner probe finds (100, 100).
        let rows = [geq(&[-100, 1, 0]), geq(&[100, -1, 0]), eq(&[0, 1, -1])];
        assert_eq!(tier1(&rows, 3), Verdict::Sat);
    }

    #[test]
    fn tier1_unknown_on_gaps() {
        // 2x = 1: the integer floor/ceil tightening sees single-variable
        // divisibility (x ≥ ⌈1/2⌉ = 1, x ≤ ⌊1/2⌋ = 0).
        let rows = [eq(&[-1, 2])];
        assert_eq!(tier1(&rows, 2), Verdict::Unsat);
        // Pugh's dark-shadow example must not be mis-answered Sat.
        let rows = [
            geq(&[-27, 11, 13]),
            geq(&[45, -11, -13]),
            geq(&[10, 7, -9]),
            geq(&[4, -7, 9]),
        ];
        assert_ne!(tier1(&rows, 3), Verdict::Sat);
    }

    #[test]
    fn tier1_equality_propagation() {
        // x = 7, y = x, y ≥ 9 → unsat through two equalities.
        let rows = [eq(&[-7, 1, 0]), eq(&[0, 1, -1]), geq(&[-9, 0, 1])];
        assert_eq!(tier1(&rows, 3), Verdict::Unsat);
    }
}
