//! Unions of [`Conjunct`]s — the `Set` type mirroring an Omega relation in
//! disjunctive normal form.

use crate::conjunct::{Conjunct, Row};
use crate::linexpr::{Constraint, ConstraintKind, LinExpr};
use crate::space::Space;
use std::fmt;

/// An integer set in disjunctive normal form: a union of [`Conjunct`]s over
/// a common [`Space`]. This corresponds to the Omega library's relations
/// restricted to sets (no input/output tuple distinction — mappings are
/// applied eagerly by the transformation framework).
///
/// # Examples
///
/// ```
/// use omega::Set;
/// let s = Set::parse("[n] -> { [i] : 1 <= i <= n && exists(a : i = 2a) }").unwrap();
/// assert!(s.contains(&[10], &[4]));
/// assert!(!s.contains(&[10], &[5]));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Set {
    space: Space,
    conjuncts: Vec<Conjunct>,
}

impl Set {
    /// The universal set over `space`.
    pub fn universe(space: &Space) -> Self {
        Set {
            space: space.clone(),
            conjuncts: vec![Conjunct::universe(space)],
        }
    }

    /// The empty set over `space`.
    pub fn empty(space: &Space) -> Self {
        Set {
            space: space.clone(),
            conjuncts: Vec::new(),
        }
    }

    /// A set holding a single conjunct.
    pub fn from_conjunct(c: Conjunct) -> Self {
        let space = c.space().clone();
        let mut s = Set {
            space,
            conjuncts: Vec::new(),
        };
        s.push_conjunct(c);
        s
    }

    /// A set defined by one conjunction of public constraints.
    pub fn from_constraints<I: IntoIterator<Item = Constraint>>(space: &Space, cons: I) -> Self {
        Set::from_conjunct(Conjunct::from_constraints(space, cons))
    }

    /// Parses the ISL-like textual syntax, e.g.
    /// `"[n] -> { [i,j] : 0 <= i < n && exists(a : i = 2a) }"`.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ParseSetError`] describing the first syntax error.
    pub fn parse(text: &str) -> Result<Set, crate::ParseSetError> {
        crate::parse::parse_set(text)
    }

    /// The space of this set.
    pub fn space(&self) -> &Space {
        &self.space
    }

    /// The conjuncts (disjuncts of the DNF).
    pub fn conjuncts(&self) -> &[Conjunct] {
        &self.conjuncts
    }

    /// If this set has exactly one conjunct, a reference to it.
    pub fn as_single_conjunct(&self) -> Option<&Conjunct> {
        if self.conjuncts.len() == 1 {
            Some(&self.conjuncts[0])
        } else {
            None
        }
    }

    /// True if the set is syntactically the universe.
    pub fn is_universe(&self) -> bool {
        self.conjuncts.iter().any(Conjunct::is_universe)
    }

    pub(crate) fn push_conjunct(&mut self, mut c: Conjunct) {
        assert_eq!(c.space(), &self.space, "space mismatch in push_conjunct");
        if c.is_known_false() {
            return;
        }
        c.canonicalize();
        if !self.conjuncts.contains(&c) {
            self.conjuncts.push(c);
        }
    }

    /// Union with another set over the same space.
    ///
    /// # Panics
    ///
    /// Panics if the spaces differ.
    pub fn union(&self, other: &Set) -> Set {
        assert_eq!(self.space, other.space, "space mismatch in union");
        let mut out = self.clone();
        for c in &other.conjuncts {
            out.push_conjunct(c.clone());
        }
        out
    }

    /// Intersection with another set (cross product of conjuncts).
    ///
    /// # Panics
    ///
    /// Panics if the spaces differ.
    pub fn intersect(&self, other: &Set) -> Set {
        assert_eq!(self.space, other.space, "space mismatch in intersect");
        let mut out = Set::empty(&self.space);
        for a in &self.conjuncts {
            for b in &other.conjuncts {
                let c = a.intersect(b);
                if c.is_sat() {
                    out.push_conjunct(c);
                }
            }
        }
        out
    }

    /// Intersection with a single conjunct.
    pub fn intersect_conjunct(&self, other: &Conjunct) -> Set {
        self.intersect(&Set::from_conjunct(other.clone()))
    }

    /// Intersection with a single constraint.
    pub fn intersect_constraint(&self, c: &Constraint) -> Set {
        self.intersect(&Set::from_constraints(&self.space, [c.clone()]))
    }

    /// Exact emptiness test.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.iter().all(|c| !c.is_sat())
    }

    /// Exact membership test for a concrete point.
    pub fn contains(&self, params: &[i64], vars: &[i64]) -> bool {
        self.conjuncts.iter().any(|c| c.contains(params, vars))
    }

    /// Exact subset test: `self ⊆ other`.
    pub fn is_subset(&self, other: &Set) -> bool {
        self.subtract(other).is_empty()
    }

    /// Exact equality test as sets of integer points.
    pub fn same_set(&self, other: &Set) -> bool {
        self.is_subset(other) && other.is_subset(self)
    }

    /// Exact disjointness test.
    pub fn is_disjoint(&self, other: &Set) -> bool {
        self.intersect(other).is_empty()
    }

    /// Set difference `self \ other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` contains an existential constraint group that is not
    /// a recognizable congruence/range pattern (cannot be complemented
    /// exactly). All sets produced by this crate's public operations satisfy
    /// the pattern; use [`Set::try_subtract`] when the operand may not.
    pub fn subtract(&self, other: &Set) -> Set {
        self.try_subtract(other).unwrap_or_else(|| {
            panic!("cannot complement an existential constraint group of {other}")
        })
    }

    /// [`Set::subtract`] returning `None` instead of panicking when `other`
    /// holds a non-complementable existential constraint group.
    pub fn try_subtract(&self, other: &Set) -> Option<Set> {
        assert_eq!(self.space, other.space, "space mismatch in subtract");
        let mut out = self.clone();
        for b in &other.conjuncts {
            let neg = try_complement_conjunct(b)?;
            let mut next = Set::empty(&self.space);
            for piece in &neg.conjuncts {
                for a in &out.conjuncts {
                    let c = a.intersect(piece);
                    if c.is_sat() {
                        next.push_conjunct(c);
                    }
                }
            }
            out = next;
        }
        Some(out)
    }

    /// [`Set::is_subset`] returning `None` when the test cannot be decided
    /// exactly (non-complementable existential group in `other`).
    pub fn try_is_subset(&self, other: &Set) -> Option<bool> {
        Some(self.try_subtract(other)?.is_empty())
    }

    /// Complement `¬self` (over the whole space).
    ///
    /// # Panics
    ///
    /// Same non-complementable existential caveat as [`Set::subtract`].
    pub fn complement(&self) -> Set {
        Set::universe(&self.space).subtract(self)
    }

    /// Splits the set into pairwise-disjoint conjunct pieces covering the
    /// same points (the paper's preprocessing step before building the AST).
    pub fn make_disjoint(&self) -> Vec<Conjunct> {
        let mut pieces: Vec<Conjunct> = Vec::new();
        let mut seen: Vec<Conjunct> = Vec::new();
        for c in &self.conjuncts {
            // Subtract only the earlier conjuncts that actually overlap —
            // already-disjoint unions (the common case after index-set
            // splitting) pass through untouched.
            let mut fresh = Set::from_conjunct(c.clone());
            for prev in &seen {
                if fresh.conjuncts.iter().all(|f| !f.intersect(prev).is_sat()) {
                    continue;
                }
                fresh = fresh.subtract(&Set::from_conjunct(prev.clone()));
                if fresh.is_empty() {
                    break;
                }
            }
            for p in fresh.conjuncts {
                pieces.push(p);
            }
            seen.push(c.clone());
        }
        pieces
    }

    /// Existentially projects out the `count` set variables starting at
    /// `first`, keeping the space unchanged (the removed dimensions become
    /// unconstrained). This is the paper's `Project(IS, l_{k}..l_{m})`.
    pub fn project_out(&self, first: usize, count: usize) -> Set {
        crate::project::project_out(self, first, count)
    }

    /// Removes all existential (local) variables by over-approximation —
    /// the Omega `Approximate` operation used by `initAST`.
    pub fn approximate(&self) -> Set {
        crate::project::approximate(self)
    }

    /// Simplifies each conjunct (eliminates removable locals, drops redundant
    /// rows) and drops unsatisfiable conjuncts.
    pub fn simplify(&self) -> Set {
        let mut out = Set::empty(&self.space);
        for c in &self.conjuncts {
            if !c.is_sat() {
                continue;
            }
            let s = crate::project::simplify_conjunct(c);
            let s = crate::gist::drop_self_redundant(&s);
            if s.is_sat() {
                out.push_conjunct(s);
            }
        }
        out
    }

    /// `Gist(self, context)`: constraints of `self` not already implied by
    /// `context`, satisfying `gist(self, ctx) ∧ ctx = self ∧ ctx`. Returns
    /// the canonical FALSE set if `self ∧ context` is empty. Includes the
    /// Omega+ strength reduction of modulo constraints.
    pub fn gist(&self, context: &Set) -> Set {
        crate::gist::gist(self, context)
    }

    /// An approximate single-conjunct hull of the union — every point of
    /// `self` satisfies the result, and stride (lattice) constraints common
    /// to all conjuncts are preserved (the Omega+ `Hull`).
    pub fn hull(&self) -> Conjunct {
        crate::hull::hull(self)
    }

    /// Re-expresses the set in `target` with old variable `v` becoming
    /// `target` variable `map[v]` (see [`Conjunct::remap_vars`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Conjunct::remap_vars`].
    pub fn remap_vars(&self, target: &Space, map: &[usize]) -> Set {
        let mut out = Set::empty(target);
        for c in &self.conjuncts {
            out.push_conjunct(c.remap_vars(target, map));
        }
        out
    }

    /// Substitutes set variable `v` by the affine `expr` in every conjunct
    /// (see [`Conjunct::substitute_var`]).
    ///
    /// # Panics
    ///
    /// Panics if `expr` mentions `v` or belongs to a different space.
    pub fn substitute_var(&self, v: usize, expr: &LinExpr) -> Set {
        let mut out = Set::empty(&self.space);
        for c in &self.conjuncts {
            let mut c = c.clone();
            c.substitute_var(v, expr);
            out.push_conjunct(c);
        }
        out
    }

    /// Translates set variable `v` by `delta` in every conjunct (the loop
    /// *shift* transformation; see [`Conjunct::translate_var`]).
    ///
    /// # Panics
    ///
    /// Panics if `delta` mentions `v` or belongs to a different space.
    pub fn translate_var(&self, v: usize, delta: &LinExpr) -> Set {
        let mut out = Set::empty(&self.space);
        for c in &self.conjuncts {
            out.push_conjunct(c.translate_var(v, delta));
        }
        out
    }

    /// Serializes the set in the input syntax accepted by [`Set::parse`],
    /// so sets can be written out and re-read exactly.
    ///
    /// # Examples
    ///
    /// ```
    /// use omega::Set;
    /// let s = Set::parse("[n] -> { [i] : 1 <= i <= n && exists(a : i = 2a) }").unwrap();
    /// let round = Set::parse(&s.to_input_syntax()).unwrap();
    /// assert!(round.same_set(&s));
    /// ```
    pub fn to_input_syntax(&self) -> String {
        let header = if self.space.n_params() > 0 {
            format!("[{}] -> ", self.space.param_names().join(","))
        } else {
            String::new()
        };
        let vars = self.space.var_names().join(",");
        if self.conjuncts.is_empty() {
            // Canonical empty set: an unsatisfiable constraint.
            return format!("{header}{{ [{vars}] : 0 = 1 }}");
        }
        let mut terms = Vec::new();
        for c in &self.conjuncts {
            terms.push(format!(
                "{header}{{ [{vars}] : {} }}",
                conjunct_to_syntax(c)
            ));
        }
        terms.join(" | ")
    }

    /// Enumerates the points of the set with each variable in
    /// `[lo[k], hi[k]]`, in lexicographic order. Intended for tests/oracles.
    pub fn enumerate(&self, params: &[i64], lo: &[i64], hi: &[i64]) -> Vec<Vec<i64>> {
        assert_eq!(lo.len(), self.space.n_vars());
        assert_eq!(hi.len(), self.space.n_vars());
        let mut out = Vec::new();
        let mut point = vec![0i64; self.space.n_vars()];
        self.enum_rec(params, lo, hi, 0, &mut point, &mut out);
        out
    }

    fn enum_rec(
        &self,
        params: &[i64],
        lo: &[i64],
        hi: &[i64],
        depth: usize,
        point: &mut Vec<i64>,
        out: &mut Vec<Vec<i64>>,
    ) {
        if depth == point.len() {
            if self.contains(params, point) {
                out.push(point.clone());
            }
            return;
        }
        for v in lo[depth]..=hi[depth] {
            point[depth] = v;
            self.enum_rec(params, lo, hi, depth + 1, point, out);
        }
    }
}

/// Renders one conjunct in the parser's input syntax: local-free rows as
/// comparisons, and all local-involving rows inside a single `exists`.
fn conjunct_to_syntax(c: &Conjunct) -> String {
    if c.is_known_false() {
        return "0 = 1".to_owned();
    }
    let space = c.space();
    let named = 1 + space.n_named();
    let render_row = |kind: ConstraintKind, row: &[i64]| -> String {
        let mut s = String::new();
        let mut any = false;
        let term = |c: i64, name: &str, s: &mut String, any: &mut bool| {
            if c == 0 {
                return;
            }
            if *any {
                s.push_str(if c > 0 { " + " } else { " - " });
                let a = c.abs();
                if a != 1 {
                    s.push_str(&format!("{a}*"));
                }
                s.push_str(name);
            } else {
                *any = true;
                if c == 1 {
                    s.push_str(name);
                } else if c == -1 {
                    s.push_str(&format!("-1*{name}"));
                } else {
                    s.push_str(&format!("{c}*{name}"));
                }
            }
        };
        for v in 0..space.n_vars() {
            term(
                row[1 + space.n_params() + v],
                space.var_name(v),
                &mut s,
                &mut any,
            );
        }
        for p in 0..space.n_params() {
            term(row[1 + p], space.param_name(p), &mut s, &mut any);
        }
        for l in 0..(row.len() - named) {
            term(row[named + l], &format!("__e{l}"), &mut s, &mut any);
        }
        let c0 = row[0];
        if !any {
            s.push_str(&c0.to_string());
        } else if c0 > 0 {
            s.push_str(&format!(" + {c0}"));
        } else if c0 < 0 {
            s.push_str(&format!(" - {}", -c0));
        }
        match kind {
            ConstraintKind::Eq => format!("{s} = 0"),
            ConstraintKind::Geq => format!("{s} >= 0"),
        }
    };
    let mut free_rows = Vec::new();
    let mut local_rows = Vec::new();
    for (kind, row) in c.rows_raw() {
        if row[named..].iter().all(|&x| x == 0) {
            free_rows.push(render_row(kind, row));
        } else {
            local_rows.push(render_row(kind, row));
        }
    }
    let mut parts = free_rows;
    if !local_rows.is_empty() {
        let names: Vec<String> = (0..c.n_locals()).map(|l| format!("__e{l}")).collect();
        parts.push(format!(
            "exists({} : {})",
            names.join(", "),
            local_rows.join(" && ")
        ));
    }
    if parts.is_empty() {
        "0 = 0".to_owned()
    } else {
        parts.join(" && ")
    }
}

/// Exact complement of a conjunct as a union of **pairwise-disjoint**
/// pieces (`¬(c₁∧c₂∧…) = ¬c₁ ∪ (c₁∧¬c₂) ∪ (c₁∧c₂∧¬c₃) ∪ …`), or `None`
/// when a group of rows sharing a local variable does not match a
/// congruence/range pattern. Disjointness matters: [`Set::make_disjoint`]
/// forwards these pieces directly, and a scanner executing overlapping
/// pieces would run statement instances twice.
pub(crate) fn try_complement_conjunct(c: &Conjunct) -> Option<Set> {
    let space = c.space().clone();
    if c.is_known_false() {
        return Some(Set::universe(&space));
    }
    let mut out = Set::empty(&space);
    let mut prefix = Conjunct::universe(&space);
    for atom in atoms(c) {
        let neg = try_complement_atom(&atom)?;
        for piece in neg {
            let p = prefix.intersect(&piece);
            if p.is_sat() {
                out.push_conjunct(p);
            }
        }
        prefix = prefix.intersect(&atom);
    }
    Some(out)
}

/// Decomposes a conjunct into "atoms": maximal groups of rows connected by
/// shared local variables. Local-free rows are singleton atoms.
pub(crate) fn atoms(c: &Conjunct) -> Vec<Conjunct> {
    let named = 1 + c.space().n_named();
    let nl = c.n_locals();
    // Union-find over locals.
    let mut parent: Vec<usize> = (0..nl).collect();
    fn find(p: &mut Vec<usize>, i: usize) -> usize {
        if p[i] != i {
            let r = find(p, p[i]);
            p[i] = r;
            r
        } else {
            i
        }
    }
    for r in c.rows() {
        let ls: Vec<usize> = (0..nl).filter(|&l| r.c[named + l] != 0).collect();
        for w in ls.windows(2) {
            let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
            if a != b {
                parent[a] = b;
            }
        }
    }
    let mut groups: Vec<Vec<&Row>> = Vec::new();
    let mut group_of_root: std::collections::HashMap<usize, usize> = Default::default();
    let mut singletons: Vec<&Row> = Vec::new();
    for r in c.rows() {
        let ls: Vec<usize> = (0..nl).filter(|&l| r.c[named + l] != 0).collect();
        if ls.is_empty() {
            singletons.push(r);
        } else {
            let root = find(&mut parent, ls[0]);
            let gi = *group_of_root.entry(root).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[gi].push(r);
        }
    }
    let mut out = Vec::new();
    for r in singletons {
        let mut a = Conjunct::universe(c.space());
        a.push_row(Row::new(r.kind, r.c[..named].to_vec()));
        out.push(a);
    }
    for g in groups {
        // Collect the locals used by this group and compact them.
        let mut used: Vec<usize> = Vec::new();
        for r in &g {
            for l in 0..nl {
                if r.c[named + l] != 0 && !used.contains(&l) {
                    used.push(l);
                }
            }
        }
        used.sort_unstable();
        let mut a = Conjunct::universe(c.space());
        for _ in 0..used.len() {
            a.add_local();
        }
        for r in &g {
            let mut row = r.c[..named].to_vec();
            for &l in &used {
                row.push(r.c[named + l]);
            }
            a.push_row(Row::new(r.kind, row));
        }
        out.push(a);
    }
    out
}

/// Exact complement of a single atom, as a list of conjuncts, or `None` for
/// existential atoms not matching a congruence/range pattern.
pub(crate) fn try_complement_atom(atom: &Conjunct) -> Option<Vec<Conjunct>> {
    let space = atom.space().clone();
    let named = 1 + space.n_named();
    if atom.n_locals() == 0 {
        let mut out = Vec::new();
        for r in atom.rows() {
            match r.kind {
                ConstraintKind::Geq => {
                    // ¬(e >= 0) ≡ -e - 1 >= 0
                    let mut c = Conjunct::universe(&space);
                    let mut neg: Vec<i64> = r.c.iter().map(|&x| -x).collect();
                    neg[0] -= 1;
                    c.push_row(Row::new(ConstraintKind::Geq, neg));
                    out.push(c);
                }
                ConstraintKind::Eq => {
                    // ¬(e = 0) ≡ e - 1 >= 0 ∨ -e - 1 >= 0
                    let mut lo = Conjunct::universe(&space);
                    let mut c1 = r.c.clone();
                    c1[0] -= 1;
                    lo.push_row(Row::new(ConstraintKind::Geq, c1));
                    out.push(lo);
                    let mut hi = Conjunct::universe(&space);
                    let mut c2: Vec<i64> = r.c.iter().map(|&x| -x).collect();
                    c2[0] -= 1;
                    hi.push_row(Row::new(ConstraintKind::Geq, c2));
                    out.push(hi);
                }
            }
        }
        return Some(out);
    }
    // Existential atom: must be a single local in a congruence or
    // range pattern:  lo <= e - m·α <= hi  (with width hi - lo < m).
    let RangeMod { expr, m, lo, hi } = range_mod_pattern(atom)?;
    // Complement: hi+1 <= e - m·α <= lo+m-1  (the residues not covered).
    let mut c = Conjunct::universe(&space);
    let l = c.add_local();
    let lc = named; // single fresh local sits right after named cols
    debug_assert_eq!(l, 0);
    let mut low = vec![0i64; named + 1];
    low[..named].copy_from_slice(&expr);
    low[0] -= hi + 1;
    low[lc] = -m;
    c.push_row(Row::new(ConstraintKind::Geq, low)); // e - mα - (hi+1) >= 0
    let mut up = vec![0i64; named + 1];
    for (j, &x) in expr.iter().enumerate() {
        up[j] = -x;
    }
    up[0] += lo + m - 1;
    up[lc] = m;
    c.push_row(Row::new(ConstraintKind::Geq, up)); // (lo+m-1) - (e - mα) >= 0
    Some(vec![c])
}

/// `lo <= expr - m·α <= hi` over a single local α (an equality means
/// `lo == hi`). `expr` is over the named columns.
pub(crate) struct RangeMod {
    pub(crate) expr: Vec<i64>,
    pub(crate) m: i64,
    pub(crate) lo: i64,
    pub(crate) hi: i64,
}

/// Recognizes a single-local atom of the congruence/range form.
pub(crate) fn range_mod_pattern(atom: &Conjunct) -> Option<RangeMod> {
    if atom.n_locals() != 1 {
        return None;
    }
    let named = 1 + atom.space().n_named();
    let lc = named;
    // Case 1: single equality row  e - m·α = 0 → lo = hi = 0 over e.
    if atom.rows().len() == 1 && atom.rows()[0].kind == ConstraintKind::Eq {
        let r = &atom.rows()[0];
        let mcoef = r.c[lc];
        if mcoef == 0 {
            return None;
        }
        let mut expr = r.c[..named].to_vec();
        let mut m = -mcoef;
        if m < 0 {
            m = -m;
            for x in &mut expr {
                *x = -*x;
            }
        }
        return Some(RangeMod {
            expr,
            m,
            lo: 0,
            hi: 0,
        });
    }
    // Case 2: two inequalities  e - m·α - lo >= 0  and  -(e - m·α) + hi >= 0.
    if atom.rows().len() == 2 && atom.rows().iter().all(|r| r.kind == ConstraintKind::Geq) {
        let (a, b) = (&atom.rows()[0], &atom.rows()[1]);
        // They must be negatives of each other on all non-constant columns.
        let opposite = a.c[1..].iter().zip(b.c[1..].iter()).all(|(&x, &y)| x == -y);
        if !opposite || a.c[lc] == 0 {
            return None;
        }
        let (lo_row, hi_row) = if a.c[lc] < 0 { (a, b) } else { (b, a) };
        // lo_row: e - mα - lo >= 0 (α coeff negative). hi_row: -(e-mα) + hi >= 0.
        let m = -lo_row.c[lc];
        let expr: Vec<i64> = {
            let mut e = lo_row.c[..named].to_vec();
            e[0] = 0;
            e
        };
        let lo = -lo_row.c[0];
        let hi = hi_row.c[0];
        if hi - lo >= m || hi < lo {
            return None; // covers everything or empty — not a clean pattern
        }
        return Some(RangeMod { expr, m, lo, hi });
    }
    None
}

impl fmt::Display for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "FALSE");
        }
        let mut first = true;
        for c in &self.conjuncts {
            if !first {
                write!(f, " | ")?;
            }
            first = false;
            write!(f, "{{{c}}}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Convenience: a [`LinExpr`] builder bound to a space (used pervasively in
/// tests and recipes).
pub fn var(space: &Space, i: usize) -> LinExpr {
    LinExpr::var(space, i)
}

/// Convenience: parameter `i` of `space` as a [`LinExpr`].
pub fn param(space: &Space, i: usize) -> LinExpr {
    LinExpr::param(space, i)
}

/// Convenience: constant expression over `space`.
pub fn constant(space: &Space, c: i64) -> LinExpr {
    LinExpr::constant(space, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num;

    fn sp() -> Space {
        Space::new(&["n"], &["i", "j"])
    }

    fn box_set(s: &Space, lo: i64, hi: i64) -> Set {
        Set::from_constraints(
            s,
            [
                (LinExpr::var(s, 0) - lo).geq0(),
                (LinExpr::constant(s, hi) - LinExpr::var(s, 0)).geq0(),
            ],
        )
    }

    #[test]
    fn union_intersect_contains() {
        let s = sp();
        let a = box_set(&s, 0, 5);
        let b = box_set(&s, 3, 9);
        let u = a.union(&b);
        let i = a.intersect(&b);
        assert!(u.contains(&[0], &[0, 0]));
        assert!(u.contains(&[0], &[9, 0]));
        assert!(!u.contains(&[0], &[10, 0]));
        assert!(i.contains(&[0], &[4, 0]));
        assert!(!i.contains(&[0], &[1, 0]));
    }

    #[test]
    fn subtract_basic() {
        let s = sp();
        let a = box_set(&s, 0, 9);
        let b = box_set(&s, 3, 5);
        let d = a.subtract(&b);
        for i in 0..=9 {
            assert_eq!(d.contains(&[0], &[i, 0]), !(3..=5).contains(&i), "i={i}");
        }
    }

    #[test]
    fn subtract_with_stride() {
        let s = sp();
        let a = box_set(&s, 0, 9);
        let evens = {
            let mut c = Conjunct::universe(&s);
            c.add_congruence(&LinExpr::var(&s, 0), 0, 2);
            Set::from_conjunct(c)
        };
        let odds_in_box = a.subtract(&evens);
        for i in 0..=9 {
            assert_eq!(odds_in_box.contains(&[0], &[i, 0]), i % 2 == 1, "i={i}");
        }
    }

    #[test]
    fn complement_of_congruence_round_trip() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_congruence(&LinExpr::var(&s, 0), 1, 4);
        let set = Set::from_conjunct(c);
        let comp = set.complement();
        for i in -10..=10 {
            assert_eq!(
                comp.contains(&[0], &[i, 0]),
                !set.contains(&[0], &[i, 0]),
                "i={i}"
            );
        }
        // Complement twice returns the same set of points.
        let comp2 = comp.complement();
        assert!(comp2.same_set(&set));
    }

    #[test]
    fn subset_and_equality() {
        let s = sp();
        let small = box_set(&s, 2, 4);
        let big = box_set(&s, 0, 9);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(big.same_set(&big.clone()));
        // Union of two halves equals the whole.
        let lo = box_set(&s, 0, 4);
        let hi = box_set(&s, 5, 9);
        assert!(lo.union(&hi).same_set(&big));
    }

    #[test]
    fn make_disjoint_covers_and_is_disjoint() {
        let s = sp();
        let a = box_set(&s, 0, 6);
        let b = box_set(&s, 4, 9);
        let u = a.union(&b);
        let pieces = u.make_disjoint();
        assert!(pieces.len() >= 2);
        // Same coverage.
        let mut rebuilt = Set::empty(&s);
        for p in &pieces {
            rebuilt = rebuilt.union(&Set::from_conjunct(p.clone()));
        }
        assert!(rebuilt.same_set(&u));
        // Pairwise disjoint.
        for (x, p) in pieces.iter().enumerate() {
            for q in pieces.iter().skip(x + 1) {
                assert!(Set::from_conjunct(p.clone()).is_disjoint(&Set::from_conjunct(q.clone())));
            }
        }
    }

    #[test]
    fn empty_and_universe() {
        let s = sp();
        assert!(Set::empty(&s).is_empty());
        assert!(!Set::universe(&s).is_empty());
        assert!(Set::universe(&s).is_universe());
        let contradiction = Set::from_constraints(
            &s,
            [
                (LinExpr::var(&s, 0) - 5).geq0(),
                (LinExpr::constant(&s, 3) - LinExpr::var(&s, 0)).geq0(),
            ],
        );
        assert!(contradiction.is_empty());
    }

    #[test]
    fn enumerate_lexicographic() {
        let s = sp();
        // 0 <= i <= 2, 0 <= j <= 1, i <= j
        let set = Set::from_constraints(
            &s,
            [
                LinExpr::var(&s, 0).geq0(),
                (LinExpr::constant(&s, 2) - LinExpr::var(&s, 0)).geq0(),
                LinExpr::var(&s, 1).geq0(),
                (LinExpr::constant(&s, 1) - LinExpr::var(&s, 1)).geq0(),
                LinExpr::var(&s, 0).leq(LinExpr::var(&s, 1)),
            ],
        );
        let pts = set.enumerate(&[0], &[-1, -1], &[3, 3]);
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 1]]);
    }

    #[test]
    fn atoms_decomposition() {
        let s = sp();
        let mut c = Conjunct::universe(&s);
        c.add_constraint(&LinExpr::var(&s, 0).geq0());
        c.add_congruence(&LinExpr::var(&s, 1), 0, 3);
        let at = atoms(&c);
        assert_eq!(at.len(), 2);
        let with_local: Vec<_> = at.iter().filter(|a| a.n_locals() > 0).collect();
        assert_eq!(with_local.len(), 1);
        assert!(range_mod_pattern(with_local[0]).is_some());
    }

    #[test]
    fn range_mod_complement_is_exact() {
        let s = Space::new::<&str>(&[], &["i"]);
        let mut c = Conjunct::universe(&s);
        // ∃a: 0 <= i - 5a <= 2 (residues 0,1,2 mod 5)
        let l = { c.add_local() };
        let named = 1 + s.n_named();
        let mut lo = vec![0i64; named + 1];
        lo[1] = 1; // i
        lo[named + l] = -5;
        c.push_row(Row::new(ConstraintKind::Geq, lo));
        let mut hi = vec![2i64, -1, 0];
        hi[named + l] = 5;
        c.push_row(Row::new(ConstraintKind::Geq, hi));
        let set = Set::from_conjunct(c);
        for i in -12..=12 {
            let member = set.contains(&[], &[i]);
            assert_eq!(member, (0..=2).contains(&num::mod_floor(i, 5)), "i={i}");
        }
        let comp = set.complement();
        for i in -12..=12 {
            assert_eq!(comp.contains(&[], &[i]), !set.contains(&[], &[i]), "i={i}");
        }
    }
}
