//! Satisfiability-pipeline instrumentation, compiled in only with the
//! `stats` cargo feature.
//!
//! The tiered solver ([`crate::sat`]) reports which tier answered each
//! query and how the tier-2 memo cache behaved. Without the feature every
//! probe compiles to nothing; with it, each probe is one relaxed atomic
//! increment.
//!
//! ```toml
//! omega = { version = "...", features = ["stats"] }
//! ```

/// Records `n` events against the named counter; a no-op without the
/// `stats` feature. Used as `bump!(cache_hits)` or `bump!(evictions, n)`.
macro_rules! bump {
    ($field:ident) => {
        $crate::stats::bump!($field, 1u64)
    };
    ($field:ident, $n:expr) => {{
        #[cfg(feature = "stats")]
        {
            $crate::stats::COUNTERS
                .$field
                .fetch_add($n as u64, ::std::sync::atomic::Ordering::Relaxed);
        }
        #[cfg(not(feature = "stats"))]
        {
            let _ = $n;
        }
    }};
}
pub(crate) use bump;

#[cfg(feature = "stats")]
pub use enabled::*;

#[cfg(feature = "stats")]
mod enabled {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Live counters for the satisfiability pipeline.
    #[derive(Debug, Default)]
    pub struct Counters {
        /// Queries answered unsatisfiable by tier 0 (syntactic checks).
        pub tier0_unsat: AtomicU64,
        /// Queries answered unsatisfiable by tier 1 (interval propagation).
        pub tier1_unsat: AtomicU64,
        /// Queries answered satisfiable by tier 1's witness probe.
        pub tier1_sat: AtomicU64,
        /// Tier-2 memo-cache hits.
        pub cache_hits: AtomicU64,
        /// Tier-2 memo-cache misses (each one runs the exact Omega test).
        pub cache_misses: AtomicU64,
        /// Entries evicted from the memo cache by second-chance sweeps.
        pub evictions: AtomicU64,
        /// Gist memo-cache hits.
        pub gist_hits: AtomicU64,
        /// Gist memo-cache misses (each one runs the full gist pipeline).
        pub gist_misses: AtomicU64,
        /// Sat queries that hit a resource limit and degraded to the
        /// conservative "satisfiable" answer (never cached).
        pub sat_degraded: AtomicU64,
        /// Gist computations built on degraded implication answers
        /// (sound, but excluded from the gist memo cache).
        pub gist_degraded: AtomicU64,
    }

    /// The process-wide counter instance the `bump!` probes target.
    pub static COUNTERS: Counters = Counters {
        tier0_unsat: AtomicU64::new(0),
        tier1_unsat: AtomicU64::new(0),
        tier1_sat: AtomicU64::new(0),
        cache_hits: AtomicU64::new(0),
        cache_misses: AtomicU64::new(0),
        evictions: AtomicU64::new(0),
        gist_hits: AtomicU64::new(0),
        gist_misses: AtomicU64::new(0),
        sat_degraded: AtomicU64::new(0),
        gist_degraded: AtomicU64::new(0),
    };

    /// A point-in-time copy of [`COUNTERS`].
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct Snapshot {
        /// Queries answered unsatisfiable by tier 0.
        pub tier0_unsat: u64,
        /// Queries answered unsatisfiable by tier 1.
        pub tier1_unsat: u64,
        /// Queries answered satisfiable by tier 1's witness probe.
        pub tier1_sat: u64,
        /// Tier-2 memo-cache hits.
        pub cache_hits: u64,
        /// Tier-2 memo-cache misses.
        pub cache_misses: u64,
        /// Entries evicted by second-chance sweeps.
        pub evictions: u64,
        /// Gist memo-cache hits.
        pub gist_hits: u64,
        /// Gist memo-cache misses.
        pub gist_misses: u64,
        /// Sat queries degraded to a conservative answer by the governor.
        pub sat_degraded: u64,
        /// Gist computations excluded from the cache as degraded.
        pub gist_degraded: u64,
    }

    impl Snapshot {
        /// Total queries that reached the pipeline past the trivial cases.
        /// Every such query probes the cache exactly once, so this is the
        /// hit + miss sum; tier verdicts are subsets of the misses.
        pub fn total(&self) -> u64 {
            self.cache_hits + self.cache_misses
        }

        /// Queries that ran the exact Omega test: cache misses not settled
        /// by tier 0 or tier 1.
        pub fn exact_solves(&self) -> u64 {
            self.cache_misses
                .saturating_sub(self.tier0_unsat + self.tier1_unsat + self.tier1_sat)
        }

        /// Fraction of queries answered without running the exact solver.
        pub fn fast_path_rate(&self) -> f64 {
            let total = self.total();
            if total == 0 {
                return 0.0;
            }
            (total - self.exact_solves()) as f64 / total as f64
        }
    }

    impl std::fmt::Display for Snapshot {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "tier0 unsat {} | tier1 unsat {} sat {} | cache hit {} miss {} evict {} | gist hit {} miss {} | degraded sat {} gist {} | fast-path {:.1}%",
                self.tier0_unsat,
                self.tier1_unsat,
                self.tier1_sat,
                self.cache_hits,
                self.cache_misses,
                self.evictions,
                self.gist_hits,
                self.gist_misses,
                self.sat_degraded,
                self.gist_degraded,
                100.0 * self.fast_path_rate(),
            )
        }
    }

    /// Reads all counters (relaxed; exact once worker threads are quiet).
    pub fn snapshot() -> Snapshot {
        Snapshot {
            tier0_unsat: COUNTERS.tier0_unsat.load(Ordering::Relaxed),
            tier1_unsat: COUNTERS.tier1_unsat.load(Ordering::Relaxed),
            tier1_sat: COUNTERS.tier1_sat.load(Ordering::Relaxed),
            cache_hits: COUNTERS.cache_hits.load(Ordering::Relaxed),
            cache_misses: COUNTERS.cache_misses.load(Ordering::Relaxed),
            evictions: COUNTERS.evictions.load(Ordering::Relaxed),
            gist_hits: COUNTERS.gist_hits.load(Ordering::Relaxed),
            gist_misses: COUNTERS.gist_misses.load(Ordering::Relaxed),
            sat_degraded: COUNTERS.sat_degraded.load(Ordering::Relaxed),
            gist_degraded: COUNTERS.gist_degraded.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters.
    pub fn reset() {
        COUNTERS.tier0_unsat.store(0, Ordering::Relaxed);
        COUNTERS.tier1_unsat.store(0, Ordering::Relaxed);
        COUNTERS.tier1_sat.store(0, Ordering::Relaxed);
        COUNTERS.cache_hits.store(0, Ordering::Relaxed);
        COUNTERS.cache_misses.store(0, Ordering::Relaxed);
        COUNTERS.evictions.store(0, Ordering::Relaxed);
        COUNTERS.gist_hits.store(0, Ordering::Relaxed);
        COUNTERS.gist_misses.store(0, Ordering::Relaxed);
        COUNTERS.sat_degraded.store(0, Ordering::Relaxed);
        COUNTERS.gist_degraded.store(0, Ordering::Relaxed);
    }
}
