//! Satisfiability-pipeline instrumentation, compiled in only with the
//! `stats` cargo feature.
//!
//! The tiered solver ([`crate::sat`]) reports which tier answered each
//! query and how the tier-2 memo cache behaved. Without the feature every
//! probe compiles to nothing; with it, each probe is one relaxed atomic
//! increment.
//!
//! ```toml
//! omega = { version = "...", features = ["stats"] }
//! ```

/// Records `n` events against the named counter; a no-op without the
/// `stats` feature. Used as `bump!(cache_hits)` or `bump!(evictions, n)`.
macro_rules! bump {
    ($field:ident) => {
        $crate::stats::bump!($field, 1u64)
    };
    ($field:ident, $n:expr) => {{
        #[cfg(feature = "stats")]
        {
            $crate::stats::COUNTERS
                .$field
                .fetch_add($n as u64, ::std::sync::atomic::Ordering::Relaxed);
        }
        #[cfg(not(feature = "stats"))]
        {
            let _ = $n;
        }
    }};
}
pub(crate) use bump;

#[cfg(feature = "stats")]
pub use enabled::*;

#[cfg(feature = "stats")]
mod enabled {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// The single source of truth for the counter list: generates
    /// [`Counters`], the [`COUNTERS`] static, [`Snapshot`], [`snapshot`],
    /// [`reset`], and `Snapshot`'s `Display` from one field list, so a new
    /// counter cannot drift out of one of the (previously hand-written)
    /// copies.
    macro_rules! define_counters {
        ($($field:ident: $doc:literal),+ $(,)?) => {
            /// Live counters for the satisfiability pipeline.
            #[derive(Debug, Default)]
            pub struct Counters {
                $(#[doc = $doc] pub $field: AtomicU64,)+
            }

            /// The process-wide counter instance the `bump!` probes target.
            pub static COUNTERS: Counters = Counters {
                $($field: AtomicU64::new(0),)+
            };

            /// A point-in-time copy of [`COUNTERS`].
            #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
            pub struct Snapshot {
                $(#[doc = $doc] pub $field: u64,)+
            }

            /// Reads all counters.
            ///
            /// Loads are **relaxed and per-field**: while worker threads
            /// are still bumping counters, a snapshot is not an atomic
            /// cross-field cut — one field can reflect an event whose
            /// sibling field does not yet (e.g. a tier verdict counted
            /// before its cache miss). Derived quantities clamp
            /// accordingly (see [`Snapshot::exact_solves`]). Snapshots
            /// are exact once the threads that bump counters are quiet.
            pub fn snapshot() -> Snapshot {
                Snapshot {
                    $($field: COUNTERS.$field.load(Ordering::Relaxed),)+
                }
            }

            /// Zeroes all counters.
            pub fn reset() {
                $(COUNTERS.$field.store(0, Ordering::Relaxed);)+
            }

            impl Snapshot {
                /// Field-wise difference `self - earlier`, saturating at 0
                /// per field (relaxed per-field loads mean a later snapshot
                /// can transiently trail an earlier one on a still-bumping
                /// field; a delta must not wrap because of it).
                pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
                    Snapshot {
                        $($field: self.$field.saturating_sub(earlier.$field),)+
                    }
                }

                /// `(name, value)` pairs for every counter field, in
                /// declaration order — the single iteration point for
                /// exporters (JSON reports, metrics bridges) so a new
                /// counter shows up everywhere without per-site edits.
                pub fn fields(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
                    [$((stringify!($field), self.$field),)+].into_iter()
                }
            }

            impl std::fmt::Display for Snapshot {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    $(write!(f, concat!(stringify!($field), " {} | "), self.$field)?;)+
                    write!(f, "fast-path {:.1}%", 100.0 * self.fast_path_rate())
                }
            }
        };
    }

    define_counters! {
        tier0_unsat: "Queries answered unsatisfiable by tier 0 (syntactic checks).",
        tier1_unsat: "Queries answered unsatisfiable by tier 1 (interval propagation).",
        tier1_sat: "Queries answered satisfiable by tier 1's witness probe.",
        cache_hits: "Tier-2 memo-cache hits.",
        cache_misses: "Tier-2 memo-cache misses (each one runs the tiered pipeline).",
        evictions: "Entries evicted from the memo cache by second-chance sweeps.",
        gist_hits: "Gist memo-cache hits.",
        gist_misses: "Gist memo-cache misses (each one runs the full gist pipeline).",
        sat_degraded: "Sat queries that hit a resource limit and degraded to the conservative \"satisfiable\" answer (never cached).",
        gist_degraded: "Gist computations built on degraded implication answers (sound, but excluded from the gist memo cache).",
        degrade_overflow: "Degradations caused by a coefficient leaving the i64 range (OmegaError::Overflow).",
        degrade_budget: "Degradations caused by Limits::budget exhaustion (OmegaError::BudgetExhausted).",
        degrade_depth: "Degradations caused by exceeding Limits::max_depth (OmegaError::DepthExceeded).",
        degrade_rowcap: "Degradations caused by exceeding Limits::row_cap (OmegaError::RowCapExceeded).",
        degrade_deadline: "Degradations caused by the Limits::deadline wall-clock firing (OmegaError::DeadlineExceeded).",
        par_batches: "Intra-query parallel fan-outs (batches submitted to the task pool).",
        par_tasks: "Tasks executed by the intra-query task pool; par_tasks / par_batches is the mean queue depth at submission.",
        par_steals: "Intra-query tasks claimed by a worker other than the submitting thread (dynamic load-balancing transfers).",
        persist_hits: "Warm persistent-tier hits on sat-verdict probes (exact solves avoided by the on-disk cache).",
        persist_misses: "Warm persistent-tier misses on sat-verdict probes (the query went on to the exact solver).",
        persist_gist_hits: "Warm persistent-tier hits on gist probes (gist pipelines avoided by the on-disk cache).",
        persist_gist_misses: "Warm persistent-tier misses on gist probes.",
        persist_writes: "Exact verdicts queued for the durable persistent tier (appended to the log on the next flush).",
        persist_truncations: "Torn or corrupt log tails truncated during persistent-cache recovery at open.",
        persist_degrade_io: "Persistent-tier degradations from I/O errors (failed reads at open, or a failed append that disabled the write path).",
        persist_degrade_checksum: "Persistent-tier records dropped for checksum mismatches (during the recovery scan or on the warm read path).",
        persist_degrade_version: "Persistent caches refused for format-version or build-fingerprint skew (the log is left untouched).",
        persist_degrade_mmap: "Warm-tier mmap failures that fell back to a heap copy of the validated log.",
        persist_degrade_unwritable: "Persistent caches disabled because the cache directory or log was unwritable.",
    }

    impl Snapshot {
        /// Total queries that reached the pipeline past the trivial cases.
        /// Every such query probes the cache exactly once, so this is the
        /// hit + miss sum; tier verdicts are subsets of the misses.
        pub fn total(&self) -> u64 {
            self.cache_hits + self.cache_misses
        }

        /// Queries that ran the exact Omega test: cache misses not settled
        /// by tier 0, tier 1, or the warm persistent tier (a `persist_hits`
        /// probe serves a prior process's exact verdict without solving).
        ///
        /// The tier sum is clamped to `cache_misses` before subtracting:
        /// under the relaxed per-field loads of [`snapshot`] a tier
        /// counter can race ahead of the cache counter it is a subset of,
        /// and an unclamped difference would wrap (or saturate to a
        /// misleading 0 while the true value is small but nonzero).
        pub fn exact_solves(&self) -> u64 {
            let tiered = (self.tier0_unsat + self.tier1_unsat + self.tier1_sat + self.persist_hits)
                .min(self.cache_misses);
            self.cache_misses - tiered
        }

        /// Fraction of queries answered without running the exact solver.
        /// Returns 0.0 when no queries were recorded (consistent with the
        /// clamping in [`Snapshot::exact_solves`]: derived quantities
        /// never invent work that the base counters do not support).
        pub fn fast_path_rate(&self) -> f64 {
            let total = self.total();
            if total == 0 {
                return 0.0;
            }
            // exact_solves <= cache_misses <= total, so this cannot wrap.
            (total - self.exact_solves()) as f64 / total as f64
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn exact_solves_clamps_racing_tier_counters() {
            // Tier counters ahead of the cache-miss counter (a transient
            // relaxed-load artifact): the clamp keeps the result at 0
            // instead of wrapping.
            let s = Snapshot {
                tier0_unsat: 5,
                tier1_unsat: 4,
                tier1_sat: 3,
                cache_misses: 7,
                ..Snapshot::default()
            };
            assert_eq!(s.exact_solves(), 0);
            // Consistent counters subtract exactly.
            let s = Snapshot {
                tier0_unsat: 2,
                tier1_unsat: 1,
                tier1_sat: 1,
                cache_misses: 7,
                ..Snapshot::default()
            };
            assert_eq!(s.exact_solves(), 3);
            // Warm persistent-tier hits answer without solving, so they
            // subtract like a tier verdict.
            let s = Snapshot {
                tier0_unsat: 2,
                tier1_unsat: 1,
                tier1_sat: 1,
                persist_hits: 2,
                cache_misses: 7,
                ..Snapshot::default()
            };
            assert_eq!(s.exact_solves(), 1);
        }

        #[test]
        fn fast_path_rate_is_zero_when_empty_and_bounded_otherwise() {
            assert_eq!(Snapshot::default().fast_path_rate(), 0.0);
            let s = Snapshot {
                cache_hits: 90,
                cache_misses: 10,
                tier0_unsat: 6,
                tier1_unsat: 2,
                tier1_sat: 1,
                ..Snapshot::default()
            };
            let r = s.fast_path_rate();
            assert!((0.0..=1.0).contains(&r));
            assert!((r - 0.99).abs() < 1e-9);
            // Even racing counters keep the rate in [0, 1].
            let s = Snapshot {
                cache_hits: 1,
                cache_misses: 1,
                tier0_unsat: 100,
                ..Snapshot::default()
            };
            assert!((0.0..=1.0).contains(&s.fast_path_rate()));
        }

        #[test]
        fn display_lists_every_field() {
            let text = Snapshot::default().to_string();
            for field in [
                "tier0_unsat",
                "tier1_unsat",
                "tier1_sat",
                "cache_hits",
                "cache_misses",
                "evictions",
                "gist_hits",
                "gist_misses",
                "sat_degraded",
                "gist_degraded",
                "degrade_overflow",
                "degrade_budget",
                "degrade_depth",
                "degrade_rowcap",
                "degrade_deadline",
                "par_batches",
                "par_tasks",
                "par_steals",
                "persist_hits",
                "persist_misses",
                "persist_gist_hits",
                "persist_gist_misses",
                "persist_writes",
                "persist_truncations",
                "persist_degrade_io",
                "persist_degrade_checksum",
                "persist_degrade_version",
                "persist_degrade_mmap",
                "persist_degrade_unwritable",
                "fast-path",
            ] {
                assert!(text.contains(field), "Display missing {field}: {text}");
            }
        }
    }
}
