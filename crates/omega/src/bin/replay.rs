//! `omega-replay` — re-runs `.omega` query dumps standalone.
//!
//! Dumps are produced by tracing a run with query provenance enabled
//! (e.g. `table1 --trace out.json --dump-dir dumps/`, or `codegend
//! --dump-dir dumps/`); each file is a tier-2 sat or gist query in the
//! parser's input syntax together with the verdict recorded at dump
//! time. Replaying recomputes the verdict from scratch and reports
//! whether it matches, turning any slow or degraded query found in a
//! trace into a reproducible test case.
//!
//! Usage: `omega-replay [--stats] FILE.omega [FILE.omega ...]`
//!
//! With `--stats` (and the `stats` cargo feature), each replay is
//! followed by one machine-readable JSON line with the `omega::stats`
//! counter deltas it caused — the same field names as `codegend`'s
//! per-request `QueryReport` records and the `/metrics` bridge — so a
//! slow query's standalone replay diffs cleanly against its daemon
//! report (`jq`-friendly: filter stdout lines starting with `{`).
//!
//! Exit status: 0 when every dump replays to its recorded verdict,
//! 1 on any mismatch or error.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut show_stats = false;
    let mut files: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--stats" => show_stats = true,
            "--help" | "-h" => {
                eprintln!("usage: omega-replay [--stats] FILE.omega [FILE.omega ...]");
                eprintln!("replays tier-2 solver query dumps and checks their recorded verdicts");
                return ExitCode::SUCCESS;
            }
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        eprintln!("usage: omega-replay [--stats] FILE.omega [FILE.omega ...]");
        eprintln!("replays tier-2 solver query dumps and checks their recorded verdicts");
        return ExitCode::FAILURE;
    }
    #[cfg(not(feature = "stats"))]
    if show_stats {
        eprintln!("omega-replay: built without the `stats` feature; --stats prints nothing");
        eprintln!("(rebuild with `--features omega/stats` to enable counters)");
    }
    let mut failures = 0usize;
    for arg in &files {
        #[cfg(feature = "stats")]
        let before = omega::stats::snapshot();
        match omega::provenance::replay_file(Path::new(arg)) {
            Ok(r) => {
                if r.matched {
                    println!(
                        "{arg}: {} ok (expected {}, got {})",
                        r.kind, r.expected, r.got
                    );
                } else {
                    println!(
                        "{arg}: {} MISMATCH (expected {}, got {})",
                        r.kind, r.expected, r.got
                    );
                    failures += 1;
                }
            }
            Err(e) => {
                println!("{arg}: error: {e}");
                failures += 1;
            }
        }
        if show_stats {
            #[cfg(feature = "stats")]
            {
                let delta = omega::stats::snapshot().delta(&before);
                println!("{}", stats_json(arg, &delta));
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} of {} dump(s) failed", files.len());
        ExitCode::FAILURE
    }
}

/// One JSON line per replayed file: every counter delta (zeros included,
/// so files diff field-for-field) plus the derived `exact_solves`, under
/// the exact field names `QueryReport` uses.
#[cfg(feature = "stats")]
fn stats_json(file: &str, delta: &omega::stats::Snapshot) -> String {
    let mut out = String::from("{\"event\":\"replay_stats\",\"file\":\"");
    for c in file.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\",\"counters\":{");
    for (i, (name, value)) in delta.fields().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str(&format!("}},\"exact_solves\":{}}}", delta.exact_solves()));
    out
}
