//! `omega-replay` — re-runs `.omega` query dumps standalone.
//!
//! Dumps are produced by tracing a run with query provenance enabled
//! (e.g. `table1 --trace out.json --dump-dir dumps/`); each file is a
//! tier-2 sat or gist query in the parser's input syntax together with
//! the verdict recorded at dump time. Replaying recomputes the verdict
//! from scratch and reports whether it matches, turning any slow or
//! degraded query found in a trace into a reproducible test case.
//!
//! Usage: `omega-replay FILE.omega [FILE.omega ...]`
//!
//! Exit status: 0 when every dump replays to its recorded verdict,
//! 1 on any mismatch or error.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: omega-replay FILE.omega [FILE.omega ...]");
        eprintln!("replays tier-2 solver query dumps and checks their recorded verdicts");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut failures = 0usize;
    for arg in &args {
        match omega::provenance::replay_file(Path::new(arg)) {
            Ok(r) => {
                if r.matched {
                    println!(
                        "{arg}: {} ok (expected {}, got {})",
                        r.kind, r.expected, r.got
                    );
                } else {
                    println!(
                        "{arg}: {} MISMATCH (expected {}, got {})",
                        r.kind, r.expected, r.got
                    );
                    failures += 1;
                }
            }
            Err(e) => {
                println!("{arg}: error: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} of {} dump(s) failed", args.len());
        ExitCode::FAILURE
    }
}
