//! Observational equivalence of the constraint-row representation.
//!
//! Coefficient rows store up to `omega::coeffs::INLINE` values inline and
//! spill wider rows to the heap; spaces are interned so structurally equal
//! ones share one allocation. Both are pure representation choices — no
//! observable behavior (equality, satisfiability verdicts, gist results)
//! may depend on whether a row is inline or spilled, or on whether a space
//! was interned or freshly built. These tests pin that on generated
//! conjuncts, crossing the inline/spill boundary by embedding the same
//! logical sets into wide spaces whose rows must spill.

use omega::arbitrary::{arb_set, ArbConfig, Rng};
use omega::coeffs::INLINE;
use omega::{Set, Space};

const NARROW_VARS: usize = 3;

fn narrow_space() -> Space {
    Space::new(&["n"], &["t1", "t2", "t3"])
}

/// A space with enough variables that every row (1 constant + 1 param +
/// `wide_vars` variable columns) exceeds the inline capacity and spills.
fn wide_space() -> Space {
    let vars: Vec<String> = (1..=INLINE + 2).map(|i| format!("t{i}")).collect();
    let refs: Vec<&str> = vars.iter().map(String::as_str).collect();
    Space::new(&["n"], &refs)
}

/// Embeds a narrow set into the wide space: same constraints, trailing
/// variables unconstrained. Narrow rows fit inline; embedded rows spill.
fn embed(s: &Set, wide: &Space) -> Set {
    let map: Vec<usize> = (0..NARROW_VARS).collect();
    s.remap_vars(wide, &map)
}

#[test]
fn emptiness_is_representation_independent() {
    let narrow = narrow_space();
    let wide = wide_space();
    let cfg = ArbConfig::default();
    let mut rng = Rng::new(0x5eed_0001);
    for case in 0..150 {
        let arb = arb_set(&mut rng, &narrow, &cfg);
        let s = arb.to_set(&narrow);
        let e = embed(&s, &wide);
        // Extra unconstrained dimensions cannot change emptiness, and the
        // embedded rows take the spilled representation.
        assert_eq!(
            s.is_empty(),
            e.is_empty(),
            "case {case}: emptiness differs between inline ({s}) and spilled embedding"
        );
    }
}

#[test]
fn equality_is_representation_independent() {
    let narrow = narrow_space();
    let wide = wide_space();
    let cfg = ArbConfig::default();
    let mut rng = Rng::new(0x5eed_0002);
    for case in 0..150 {
        let arb = arb_set(&mut rng, &narrow, &cfg);
        // Two independent constructions from the same description: the
        // spaces intern to one allocation, the rows are rebuilt from
        // scratch — equality must see through both.
        let a = arb.to_set(&narrow);
        let b = arb.to_set(&narrow);
        assert_eq!(a, b, "case {case}: rebuilt set differs ({a})");
        assert_eq!(
            embed(&a, &wide),
            embed(&b, &wide),
            "case {case}: rebuilt spilled embedding differs"
        );
    }
}

#[test]
fn sat_and_gist_agree_between_inline_and_spilled_rows() {
    let narrow = narrow_space();
    let wide = wide_space();
    let cfg = ArbConfig::default();
    let mut rng = Rng::new(0x5eed_0003);
    for case in 0..60 {
        let a = arb_set(&mut rng, &narrow, &cfg).to_set(&narrow);
        let ctx = arb_set(&mut rng, &narrow, &cfg).to_set(&narrow);
        if ctx.is_empty() {
            continue; // gist against an empty context is unconstrained
        }
        let ea = embed(&a, &wide);
        let ectx = embed(&ctx, &wide);
        // Subset verdicts route through intersection + satisfiability on
        // rows of both representations.
        assert_eq!(
            a.is_subset(&ctx),
            ea.is_subset(&ectx),
            "case {case}: subset verdict differs between representations"
        );
        // The gist defining property, evaluated entirely on spilled rows:
        // gist(A, ctx) ∧ ctx = A ∧ ctx.
        let g = ea.gist(&ectx);
        assert!(
            g.intersect(&ectx).same_set(&ea.intersect(&ectx)),
            "case {case}: gist defining property fails on spilled rows"
        );
    }
}

#[test]
fn self_intersection_is_identity_on_spilled_rows() {
    let wide = wide_space();
    let cfg = ArbConfig::default();
    let mut rng = Rng::new(0x5eed_0004);
    for case in 0..40 {
        // Generated directly over the wide space: every row spills, and
        // intersect/push/canonicalize all run on the heap representation.
        let s = arb_set(&mut rng, &wide, &cfg).to_set(&wide);
        assert!(
            s.intersect(&s).same_set(&s),
            "case {case}: s ∩ s differs from s on spilled rows"
        );
    }
}
