//! The committed sample dumps under `tests/dumps/` replay to their
//! recorded verdicts — the compatibility contract for the
//! `omega-replay v1` provenance format: dumps written by older builds must
//! keep replaying on newer ones.

#[test]
fn committed_sample_dumps_replay_to_recorded_verdicts() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/dumps");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("tests/dumps must exist") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "omega") {
            continue;
        }
        let r = omega::provenance::replay_file(&path).expect("sample dump must parse");
        assert!(
            r.matched,
            "{}: replayed to {} but dump recorded {}",
            path.display(),
            r.got,
            r.expected
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected the committed sat/unsat/gist samples"
    );
}
