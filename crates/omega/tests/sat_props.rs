//! Property tests for the satisfiability core: the Omega test must agree
//! with brute-force enumeration on randomized small systems — including
//! the integer-only-infeasible cases where the rational relaxation lies.

use omega::{Conjunct, LinExpr, Space};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Sys {
    rows: Vec<(i64, i64, i64, bool)>, // a·x + b·y + c (>=|=) 0
    stride: Option<(i64, i64, i64)>,  // x + k·y ≡ r (mod m)
}

fn sys_strategy() -> impl Strategy<Value = Sys> {
    let row = (-4i64..=4, -4i64..=4, -9i64..=9, prop::bool::weighted(0.75));
    (
        prop::collection::vec(row, 1..5),
        prop::option::weighted(0.5, (-2i64..=2, 0i64..=4, 2i64..=5)),
    )
        .prop_map(|(rows, stride)| Sys {
            rows,
            stride: stride.map(|(k, r, m)| (k, r % m, m)),
        })
}

fn build(sys: &Sys, space: &Space) -> Conjunct {
    let mut c = Conjunct::universe(space);
    // Keep the system bounded so brute force is conclusive.
    c.add_constraint(&(LinExpr::var(space, 0) + 10).geq0());
    c.add_constraint(&(LinExpr::constant(space, 10) - LinExpr::var(space, 0)).geq0());
    c.add_constraint(&(LinExpr::var(space, 1) + 10).geq0());
    c.add_constraint(&(LinExpr::constant(space, 10) - LinExpr::var(space, 1)).geq0());
    for &(a, b, k, geq) in &sys.rows {
        let e = LinExpr::var(space, 0) * a + LinExpr::var(space, 1) * b + k;
        c.add_constraint(&if geq { e.geq0() } else { e.eq0() });
    }
    if let Some((k, r, m)) = sys.stride {
        c.add_congruence(&(LinExpr::var(space, 0) + LinExpr::var(space, 1) * k), r, m);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn solver_agrees_with_brute_force(sys in sys_strategy()) {
        let space = Space::new::<&str>(&[], &["x", "y"]);
        let c = build(&sys, &space);
        let brute = (-10..=10).any(|x| (-10..=10).any(|y| c.contains(&[], &[x, y])));
        // `contains` substitutes the point and solves over locals only, so
        // using it as the brute-force membership test is independent of the
        // full 2-variable solve being checked here.
        prop_assert_eq!(c.is_sat(), brute, "system: {}", &c);
    }

    #[test]
    fn projection_never_loses_points(sys in sys_strategy()) {
        let space = Space::new::<&str>(&[], &["x", "y"]);
        let c = build(&sys, &space);
        let s = c.to_set();
        let p = s.project_out(1, 1);
        for x in -10..=10 {
            let has_y = (-10..=10).any(|y| s.contains(&[], &[x, y]));
            if has_y {
                prop_assert!(
                    p.contains(&[], &[x, 0]),
                    "projection lost x={} of {}", x, &c
                );
            }
        }
    }

    #[test]
    fn make_disjoint_partitions(sys in sys_strategy(), sys2 in sys_strategy()) {
        let space = Space::new::<&str>(&[], &["x", "y"]);
        let a = build(&sys, &space).to_set();
        let b = build(&sys2, &space).to_set();
        let u = a.union(&b);
        let pieces = u.make_disjoint();
        for x in -10..=10i64 {
            for y in [-10i64, -3, 0, 2, 7, 10] {
                let n = pieces
                    .iter()
                    .filter(|p| p.contains(&[], &[x, y]))
                    .count();
                let member = u.contains(&[], &[x, y]);
                prop_assert_eq!(n == 1, member, "({},{}) covered {} times", x, y, n);
                prop_assert!(n <= 1, "({},{}) covered {} times", x, y, n);
            }
        }
    }
}
