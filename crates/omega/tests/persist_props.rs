//! Property tests for the persistent cache's canonical fingerprint
//! ([`omega::Conjunct::canonical_fingerprint`]): semantically equal
//! constraint systems reached through different syntactic routes — row
//! order, duplicated rows, entailment-redundant inequalities, uniformly
//! scaled constraints — must hash identically, and every provable
//! contradiction must collapse to the one canonical FALSE fingerprint.
//! These are exactly the invariants that let two processes (or two boots
//! of one) share on-disk verdicts keyed by the fingerprint.

use omega::{Conjunct, LinExpr, Space};
use proptest::prelude::*;

/// One random small system: rows `a·x + b·y + k (≥|=) 0`.
#[derive(Debug, Clone)]
struct Sys {
    rows: Vec<(i64, i64, i64, bool)>,
}

fn sys_strategy() -> impl Strategy<Value = Sys> {
    let row = (-4i64..=4, -4i64..=4, -9i64..=9, prop::bool::weighted(0.75));
    prop::collection::vec(row, 1..6).prop_map(|rows| Sys { rows })
}

fn row_expr(space: &Space, (a, b, k, _): (i64, i64, i64, bool)) -> LinExpr {
    LinExpr::var(space, 0) * a + LinExpr::var(space, 1) * b + k
}

fn add_row(c: &mut Conjunct, space: &Space, row: (i64, i64, i64, bool)) {
    let e = row_expr(space, row);
    c.add_constraint(&if row.3 { e.geq0() } else { e.eq0() });
}

fn build(rows: &[(i64, i64, i64, bool)], space: &Space) -> Conjunct {
    let mut c = Conjunct::universe(space);
    for &r in rows {
        add_row(&mut c, space, r);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Insertion order must not matter: the same rows rotated and/or
    /// reversed fingerprint identically.
    #[test]
    fn fingerprint_is_row_order_invariant(
        sys in sys_strategy(),
        rot in 0usize..8,
        rev in any::<bool>(),
    ) {
        let space = Space::new::<&str>(&[], &["x", "y"]);
        let a = build(&sys.rows, &space);
        let mut shuffled = sys.rows.clone();
        let n = shuffled.len().max(1);
        shuffled.rotate_left(rot % n);
        if rev {
            shuffled.reverse();
        }
        let b = build(&shuffled, &space);
        prop_assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    /// Repeating a row exactly, or repeating an inequality with a looser
    /// constant (entailed by the original), must not change the
    /// fingerprint.
    #[test]
    fn fingerprint_ignores_duplicate_and_entailed_rows(
        sys in sys_strategy(),
        pick in 0usize..8,
        slack in 0i64..6,
    ) {
        let space = Space::new::<&str>(&[], &["x", "y"]);
        let a = build(&sys.rows, &space);
        let (ra, rb, rk, geq) = sys.rows[pick % sys.rows.len()];
        let mut extended = sys.rows.clone();
        // A looser inequality is entailed; an equality only entails its
        // exact copy.
        let dup = if geq { (ra, rb, rk + slack, geq) } else { (ra, rb, rk, geq) };
        extended.push(dup);
        let b = build(&extended, &space);
        prop_assert_eq!(a.canonical_fingerprint(), b.canonical_fingerprint());
    }

    /// Scaling one constraint by a positive integer leaves the system —
    /// and the fingerprint — unchanged (gcd normalization).
    #[test]
    fn fingerprint_is_scale_invariant(
        sys in sys_strategy(),
        pick in 0usize..8,
        scale in 1i64..5,
    ) {
        let space = Space::new::<&str>(&[], &["x", "y"]);
        let a = build(&sys.rows, &space);
        let i = pick % sys.rows.len();
        let mut c = Conjunct::universe(&space);
        for (j, &row) in sys.rows.iter().enumerate() {
            if j == i {
                let e = row_expr(&space, row) * scale;
                c.add_constraint(&if row.3 { e.geq0() } else { e.eq0() });
            } else {
                add_row(&mut c, &space, row);
            }
        }
        prop_assert_eq!(a.canonical_fingerprint(), c.canonical_fingerprint());
    }

    /// Any system plus a provably false constant row collapses to the
    /// canonical FALSE fingerprint — the same one `Conjunct::empty`
    /// reports — so contradictory queries share a single disk record no
    /// matter how they were phrased.
    #[test]
    fn contradictions_collapse_to_one_fingerprint(sys in sys_strategy()) {
        let space = Space::new::<&str>(&[], &["x", "y"]);
        let mut c = build(&sys.rows, &space);
        c.add_constraint(&(LinExpr::constant(&space, -1)).geq0());
        prop_assert_eq!(
            c.canonical_fingerprint(),
            Conjunct::empty(&space).canonical_fingerprint()
        );
    }

    /// The fingerprint must still *distinguish*: tightening an
    /// inequality's constant by one (on a system that stays satisfiable
    /// and non-degenerate) may not collide with the original. Collisions
    /// here would silently merge different queries' verdicts on disk.
    #[test]
    fn fingerprint_separates_tightened_systems(
        a0 in 1i64..4, b0 in -3i64..4, k in -6i64..7,
    ) {
        let space = Space::new::<&str>(&[], &["x", "y"]);
        let mk = |kk: i64| {
            let mut c = Conjunct::universe(&space);
            let e = LinExpr::var(&space, 0) * a0 + LinExpr::var(&space, 1) * b0 + kk;
            c.add_constraint(&e.geq0());
            c
        };
        let (a, b) = (mk(k), mk(k + 1));
        // Only compare when normalization keeps both rows distinct
        // (gcd flooring can legitimately merge k and k+1).
        if a0.gcd_check(b0) {
            prop_assert_ne!(a.canonical_fingerprint(), b.canonical_fingerprint());
        }
    }
}

/// Helper trait: the tightened-system property only holds when the row's
/// variable coefficients are coprime, so gcd flooring cannot merge
/// adjacent constants.
trait GcdCheck {
    fn gcd_check(self, other: i64) -> bool;
}

impl GcdCheck for i64 {
    fn gcd_check(self, other: i64) -> bool {
        fn gcd(a: i64, b: i64) -> i64 {
            if b == 0 {
                a.abs()
            } else {
                gcd(b, a % b)
            }
        }
        gcd(self, other) == 1
    }
}
