//! Cross-operation integration tests for the set algebra: identities that
//! combine parsing, boolean operations, projection and display.

use omega::{LinExpr, Set, Space};

fn s(text: &str) -> Set {
    Set::parse(text).unwrap()
}

#[test]
fn de_morgan_on_bounded_window() {
    let a = s("{ [i] : 0 <= i <= 9 }");
    let b = s("{ [i] : 5 <= i <= 14 }");
    let lhs = a.union(&b).complement();
    let rhs = a.complement().intersect(&b.complement());
    for i in -5..25 {
        assert_eq!(lhs.contains(&[], &[i]), rhs.contains(&[], &[i]), "i={i}");
    }
}

#[test]
fn subtract_absorbs_subset() {
    let big = s("{ [i,j] : 0 <= i <= 9 && 0 <= j <= 9 }");
    let small = s("{ [i,j] : 2 <= i <= 4 && 2 <= j <= 4 }");
    assert!(small.is_subset(&big));
    let diff = big.subtract(&small);
    assert!(diff.union(&small).same_set(&big));
    assert!(diff.is_disjoint(&small));
}

#[test]
fn projection_composes() {
    let set = s("[n] -> { [i,j,k] : 0 <= i < n && i <= j < n && j <= k < n }");
    let p1 = set.project_out(2, 1).project_out(1, 1);
    let p2 = set.project_out(1, 2);
    for i in -1..8 {
        assert_eq!(
            p1.contains(&[6], &[i, 0, 0]),
            p2.contains(&[6], &[i, 0, 0]),
            "i={i}"
        );
    }
}

#[test]
fn stride_intersections_compose_via_crt() {
    let m2 = s("{ [i] : exists(a : i = 2a) }");
    let m3 = s("{ [i] : exists(a : i = 3a) }");
    let m6 = s("{ [i] : exists(a : i = 6a) }");
    assert!(m2.intersect(&m3).same_set(&m6));
    // And incompatible residues are empty.
    let r1 = s("{ [i] : exists(a : i = 2a) }");
    let r2 = s("{ [i] : exists(a : i = 2a + 1) }");
    assert!(r1.intersect(&r2).is_empty());
}

#[test]
fn display_then_eyeball_keywords() {
    let set = s("[n] -> { [i] : 1 <= i <= n && exists(a : i = 4a + 1) }");
    let text = set.to_string();
    assert!(text.contains("i"), "{text}");
    assert!(text.contains("a0") || text.contains("4"), "{text}");
}

#[test]
fn translate_composes_with_remap() {
    let sp = Space::new(&["n"], &["i", "j"]);
    let set = s("[n] -> { [i,j] : 0 <= i < n && j = 2i }");
    let shifted = set.translate_var(0, &LinExpr::constant(&sp, 3));
    let target = Space::new(&["n"], &["x", "y"]);
    let renamed = shifted.remap_vars(&target, &[1, 0]); // i→y, j→x
                                                        // Point (i=2, j=4) → shifted (5, 4) → renamed (x=4, y=5).
    assert!(renamed.contains(&[9], &[4, 5]));
    assert!(!renamed.contains(&[9], &[5, 4]));
}

#[test]
fn enumerate_respects_strides_and_params() {
    let set = s("[n] -> { [i] : 1 <= i <= n && exists(a : i = 3a + 2) }");
    let pts = set.enumerate(&[12], &[0], &[13]);
    let xs: Vec<i64> = pts.iter().map(|p| p[0]).collect();
    assert_eq!(xs, vec![2, 5, 8, 11]);
}

#[test]
fn empty_universe_edge_cases() {
    let sp = Space::new::<&str>(&[], &["i"]);
    assert!(Set::universe(&sp).complement().is_empty());
    assert!(Set::empty(&sp).complement().is_universe());
    let zero_dim = Set::parse("{ [] }").unwrap();
    assert!(zero_dim.contains(&[], &[]));
    assert!(!zero_dim.is_empty());
}

#[test]
fn gist_with_multi_conjunct_context_uses_hull() {
    let a = s("{ [i] : 0 <= i <= 100 }");
    let ctx = s("{ [i] : 0 <= i <= 40 } | { [i] : 60 <= i <= 100 }");
    let g = a.gist(&ctx);
    // The hull of the context implies both bounds of a.
    assert!(g.conjuncts().iter().all(|c| c.is_universe()), "{g}");
}

#[test]
fn linexpr_substitute_var() {
    let sp = Space::new(&["n"], &["i", "j"]);
    let e = LinExpr::var(&sp, 0) * 3 + LinExpr::var(&sp, 1) - 5;
    // i := 2j + n
    let sub = LinExpr::var(&sp, 1) * 2 + LinExpr::param(&sp, 0);
    let out = e.substitute_var(0, &sub);
    // 3(2j + n) + j - 5 = 7j + 3n - 5
    assert_eq!(out.eval(&[4], &[999, 2]), 7 * 2 + 12 - 5);
    assert_eq!(out.var_coeff(0), 0);
    // Substituting an absent variable is the identity.
    let id = e.substitute_var(0, &sub).substitute_var(0, &sub);
    assert_eq!(id.to_string(), out.to_string());
}

#[test]
fn set_substitute_var_matches_pointwise() {
    let sp = Space::new(&["n"], &["i", "j"]);
    let set = s("[n] -> { [i,j] : 0 <= i && i <= j && j <= n }");
    // i := j - 1 everywhere.
    let sub = LinExpr::var(&sp, 1) - 1;
    let out = set.substitute_var(0, &sub);
    for j in -2..8 {
        for i_any in [-5i64, 0, 3] {
            assert_eq!(
                out.contains(&[5], &[i_any, j]),
                set.contains(&[5], &[j - 1, j]),
                "j={j}"
            );
        }
    }
}

#[test]
fn conjunct_swap_vars_pointwise() {
    let set = s("[n] -> { [i,j] : 0 <= i && 2i <= j && j <= n }");
    let c = set.conjuncts()[0].clone();
    let swapped = c.swap_vars(0, 1);
    for i in -3..7 {
        for j in -3..7 {
            assert_eq!(
                c.contains(&[6], &[i, j]),
                swapped.contains(&[6], &[j, i]),
                "({i},{j})"
            );
        }
    }
}

#[test]
fn parser_never_panics_on_garbage() {
    // Fuzz-ish: arbitrary manglings of valid inputs must error, not panic.
    let base = "[n] -> { [i,j] : 0 <= i < n && exists(a : j = 2a) }";
    for cut in 0..base.len() {
        let _ = Set::parse(&base[..cut]);
        let mangled: String = base
            .chars()
            .enumerate()
            .map(|(k, ch)| if k == cut { '%' } else { ch })
            .collect();
        let _ = Set::parse(&mangled);
    }
}

#[test]
fn input_syntax_round_trips_examples() {
    for text in [
        "[n] -> { [i,j] : 0 <= i < n && 0 <= j < i }",
        "{ [i] : 1 <= i <= 100 && exists(a : i = 4a + 1) }",
        "{ [i] : i <= -1 } | { [i] : i >= 1 }",
        "[n,m] -> { [i,j,k] : 0 <= i < n && 2i <= j < m + 3i && exists(a : k = 8a + 3) && k <= i + j }",
        "{ [] }",
        "{ [i] : i >= 1 && i <= 0 }",
    ] {
        let set = Set::parse(text).unwrap();
        let round = Set::parse(&set.to_input_syntax())
            .unwrap_or_else(|e| panic!("reparse failed for {text}: {e}\nserialized: {}", set.to_input_syntax()));
        assert!(round.same_set(&set), "{text} → {}", set.to_input_syntax());
    }
}
