//! Deterministic fault-injection tests (`--features faults`): every solver
//! failure mode is forced at the first counted operation and must surface
//! as a conservative verdict with a matching degradation certificate —
//! never a panic, never a poisoned cache.
//!
//! CI runs this file as a matrix over `OMEGA_FAULT` (a fault tag) and
//! `OMEGA_FAULT_CACHE` (`cold` / `warm`); without those variables every
//! combination runs in-process.

#![cfg(feature = "faults")]

use std::sync::Mutex;

use omega::faults::{self, Fault};
use omega::limits::with_limits;
use omega::{Certainty, Conjunct, Limits, LinExpr, Space};

/// The armed fault is process-global: tests in this binary serialize.
static ARMED: Mutex<()> = Mutex::new(());

/// Pugh's dark-shadow system (rationally feasible, integer-infeasible):
/// undecidable for the syntactic and interval tiers, so the query always
/// reaches the exact solver — where the armed fault fires.
fn tier2_unsat() -> Conjunct {
    let sp = Space::new::<&str>(&[], &["x", "y"]);
    let x = || LinExpr::var(&sp, 0);
    let y = || LinExpr::var(&sp, 1);
    let mut c = Conjunct::universe(&sp);
    c.add_constraint(&(x() * 11 + y() * 13 - 27).geq0());
    c.add_constraint(&((-(x() * 11 + y() * 13)) + 45).geq0());
    c.add_constraint(&(x() * 7 - y() * 9 + 10).geq0());
    c.add_constraint(&((-(x() * 7 - y() * 9)) + 4).geq0());
    c
}

/// Cold cache: the armed fault fires inside the exact solver, the query
/// answers conservatively (satisfiable) with the fault's reason on the
/// certificate, and the degraded verdict is NOT cached — disarming and
/// re-querying yields the exact answer.
fn check_cold(fault: Fault) {
    let c = tier2_unsat();
    omega::reset_sat_cache();
    faults::inject_after(1, fault);
    let (sat, cert) = with_limits(Limits::default(), || c.is_sat());
    assert!(sat, "{fault:?}: faulted query must answer conservatively");
    let reasons = cert.reasons();
    assert!(
        reasons.contains(fault.error()),
        "{fault:?}: certificate {cert} must name the injected fault"
    );

    faults::clear();
    let (sat, cert) = with_limits(Limits::default(), || c.is_sat());
    assert!(
        !sat,
        "{fault:?}: degraded verdict must not have been cached"
    );
    assert_eq!(cert, Certainty::Exact);
}

/// Warm cache: an exact verdict cached before the fault is armed
/// short-circuits the solver, so the armed fault never fires and the
/// answer stays exact — a cache hit is exact by construction.
fn check_warm(fault: Fault) {
    let c = tier2_unsat();
    faults::clear();
    omega::reset_sat_cache();
    let (sat, cert) = with_limits(Limits::default(), || c.is_sat());
    assert!(!sat);
    assert_eq!(cert, Certainty::Exact);

    faults::inject_after(1, fault);
    let (sat, cert) = with_limits(Limits::default(), || c.is_sat());
    assert!(!sat, "{fault:?}: cached exact verdict must short-circuit");
    assert_eq!(cert, Certainty::Exact, "{fault:?}: cache hits are exact");
    faults::clear();
}

/// The CI matrix entry point: `OMEGA_FAULT` picks one fault tag (all five
/// when unset), `OMEGA_FAULT_CACHE` picks `cold` or `warm` (both when
/// unset).
#[test]
fn fault_matrix() {
    let _g = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    let faults: Vec<Fault> = match std::env::var("OMEGA_FAULT") {
        Ok(tag) => {
            vec![Fault::from_tag(&tag).unwrap_or_else(|| panic!("unknown OMEGA_FAULT tag {tag:?}"))]
        }
        Err(_) => Fault::ALL.to_vec(),
    };
    let caches: Vec<String> = match std::env::var("OMEGA_FAULT_CACHE") {
        Ok(mode) => vec![mode],
        Err(_) => vec!["cold".into(), "warm".into()],
    };
    for &fault in &faults {
        for cache in &caches {
            match cache.as_str() {
                "cold" => check_cold(fault),
                "warm" => check_warm(fault),
                other => panic!("unknown OMEGA_FAULT_CACHE mode {other:?}"),
            }
        }
    }
    faults::clear();
}

/// A fault armed past the query's op count never fires: the query
/// completes exactly.
#[test]
fn fault_beyond_query_length_is_inert() {
    let _g = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    let c = tier2_unsat();
    omega::reset_sat_cache();
    faults::inject_after(u64::MAX - 1, Fault::Overflow);
    let (sat, cert) = with_limits(Limits::default(), || c.is_sat());
    faults::clear();
    assert!(!sat);
    assert_eq!(cert, Certainty::Exact);
}

/// Determinism: with a fault armed, repeated cold-cache runs of the same
/// query produce identical verdicts and identical certificates.
#[test]
fn faulted_queries_are_deterministic() {
    let _g = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    let c = tier2_unsat();
    let mut outcomes = Vec::new();
    for _ in 0..3 {
        omega::reset_sat_cache();
        faults::inject_after(2, Fault::BudgetExhausted);
        let (sat, cert) = with_limits(Limits::default(), || c.is_sat());
        outcomes.push((sat, cert));
    }
    faults::clear();
    assert!(outcomes.windows(2).all(|w| w[0] == w[1]), "{outcomes:?}");
}
