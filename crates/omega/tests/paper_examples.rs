//! The worked examples of paper §2.2, verbatim: Project, Gist (including
//! the modulo strength reduction), and Hull (including lattice detection).

use omega::Set;

#[test]
fn project_simple() {
    // Project({1 <= y <= x <= 100}, x) = {1 <= y <= 100}
    let s = Set::parse("{ [y,x] : 1 <= y && y <= x && x <= 100 }").unwrap();
    let p = s.project_out(1, 1);
    let expect = Set::parse("{ [y,x] : 1 <= y && y <= 100 }").unwrap();
    assert!(p.same_set(&expect), "{p}");
}

#[test]
fn project_generates_stride() {
    // Project({1 <= x <= 100 ∧ y = 2x}, x) = {2 <= y <= 200 ∧ ∃a(y = 2a)}
    let s = Set::parse("{ [x,y] : 1 <= x && x <= 100 && y = 2x }").unwrap();
    let p = s.project_out(0, 1);
    let expect = Set::parse("{ [x,y] : 2 <= y && y <= 200 && exists(a : y = 2a) }").unwrap();
    assert!(p.same_set(&expect), "{p}");
    // The congruence is explicit in the result, not just implicit.
    assert_eq!(p.conjuncts()[0].congruences().len(), 1);
}

#[test]
fn gist_drops_known_conjunct() {
    // Gist({i > 10 ∧ j > 10}, {j > 10}) = {i > 10}
    let a = Set::parse("{ [i,j] : i > 10 && j > 10 }").unwrap();
    let b = Set::parse("{ [i,j] : j > 10 }").unwrap();
    let g = a.gist(&b);
    let expect = Set::parse("{ [i,j] : i > 10 }").unwrap();
    assert!(g.same_set(&expect), "{g}");
}

#[test]
fn gist_keeps_unimplied_bound() {
    // Gist({1 <= i <= 100}, {i > 10}) = {i <= 100}
    let a = Set::parse("{ [i] : 1 <= i && i <= 100 }").unwrap();
    let b = Set::parse("{ [i] : i > 10 }").unwrap();
    let g = a.gist(&b);
    let expect = Set::parse("{ [i] : i <= 100 }").unwrap();
    assert!(g.same_set(&expect), "{g}");
}

#[test]
fn gist_reduces_modulo_strength() {
    // Gist({∃a(i = 6a)}, {∃a(i = 2a)}) = {∃a(i = 3a)}  (Chinese remainder)
    let a = Set::parse("{ [i] : exists(a : i = 6a) }").unwrap();
    let b = Set::parse("{ [i] : exists(a : i = 2a) }").unwrap();
    let g = a.gist(&b);
    let expect = Set::parse("{ [i] : exists(a : i = 3a) }").unwrap();
    assert!(g.same_set(&expect), "{g}");
    // Defining property on a window, for good measure.
    let gb = g.intersect(&b);
    let ab = a.intersect(&b);
    for i in -36..=36 {
        assert_eq!(gb.contains(&[], &[i]), ab.contains(&[], &[i]), "i={i}");
    }
}

#[test]
fn hull_stretches_bounds_and_finds_lattice() {
    // Hull({1≤i,j≤100 ∧ ∃a(j=i+4a)} ∪ {1≤i≤50 ∧ 1≤j≤200 ∧ ∃a(j=i+6a)})
    //   = {1≤i≤100 ∧ 1≤j≤200 ∧ ∃a(j=i+2a)}
    let s = Set::parse(
        "{ [i,j] : 1 <= i && i <= 100 && 1 <= j && j <= 100 && exists(a : j = i + 4a) } \
         | { [i,j] : 1 <= i && i <= 50 && 1 <= j && j <= 200 && exists(a : j = i + 6a) }",
    )
    .unwrap();
    let h = s.hull().to_set();
    let expect = Set::parse(
        "{ [i,j] : 1 <= i && i <= 100 && 1 <= j && j <= 200 && exists(a : j = i + 2a) }",
    )
    .unwrap();
    assert!(h.same_set(&expect), "{h}");
}

#[test]
fn intro_interchange_example() {
    // §2.1: applying {[i,j] → [j,i]} to {0 ≤ i < n ∧ 0 ≤ j < i} gives
    // {0 ≤ j < i < n} over the swapped dims (here checked as point sets).
    let orig = Set::parse("[n] -> { [i,j] : 0 <= i < n && 0 <= j < i }").unwrap();
    let swapped = Set::parse("[n] -> { [i,j] : 0 <= i && i < j && j < n }").unwrap();
    for i in -1..8 {
        for j in -1..8 {
            assert_eq!(
                orig.contains(&[7], &[i, j]),
                swapped.contains(&[7], &[j, i]),
                "({i},{j})"
            );
        }
    }
}
