//! Resilience-layer integration tests: the resource governor degrades
//! soundly, degraded verdicts never poison the shared caches, and parser
//! overflow is a recoverable error with source-span context.

use omega::limits::with_limits;
use omega::{Certainty, Conjunct, Limits, LinExpr, OmegaError, Set, Space};

/// Pugh's dark-shadow example: rationally satisfiable but with no integer
/// point, so neither the syntactic nor the interval tier can decide it —
/// only the exact (governed) Omega test answers, and a starved governor is
/// forced to degrade on it. Built through the raw `Conjunct` API so no
/// parse-time canonicalization can pre-solve it.
fn tier2_unsat() -> Conjunct {
    let sp = Space::new::<&str>(&[], &["x", "y"]);
    let x = || LinExpr::var(&sp, 0);
    let y = || LinExpr::var(&sp, 1);
    let mut c = Conjunct::universe(&sp);
    // 27 <= 11x + 13y <= 45 and -10 <= 7x - 9y <= 4.
    c.add_constraint(&(x() * 11 + y() * 13 - 27).geq0());
    c.add_constraint(&((-(x() * 11 + y() * 13)) + 45).geq0());
    c.add_constraint(&(x() * 7 - y() * 9 + 10).geq0());
    c.add_constraint(&((-(x() * 7 - y() * 9)) + 4).geq0());
    c
}

/// A governor small enough that any query reaching the exact solver trips
/// a limit before finishing.
fn starving() -> Limits {
    Limits {
        budget: 1,
        max_depth: 0,
        row_cap: 1,
        ..Limits::default()
    }
}

/// The regression the cache fix guards against: a budget-starved query
/// answers conservatively (and reports why), and a later query on the SAME
/// system under fresh limits still gets the exact answer — the degraded
/// verdict must not have been cached.
#[test]
fn starved_verdict_is_not_cached() {
    let c = tier2_unsat();
    omega::reset_sat_cache();

    let (starved_sat, cert) = with_limits(starving(), || c.is_sat());
    assert!(
        starved_sat,
        "starved query must answer conservatively (satisfiable)"
    );
    assert!(
        !cert.is_exact(),
        "conservative answer must carry an Approximate certificate, got {cert}"
    );

    // Fresh-budget re-query: exact, in spite of the starved one above.
    let (sat, cert) = with_limits(Limits::default(), || c.is_sat());
    assert!(
        !sat,
        "full-budget query must see the exact (unsat) answer, not a cached degraded one"
    );
    assert_eq!(cert, Certainty::Exact);

    // And the exact verdict IS cached: a warm re-query stays exact even
    // under a starving governor.
    let (sat, cert) = with_limits(starving(), || c.is_sat());
    assert!(!sat, "cached exact verdicts are exact under any limits");
    assert_eq!(cert, Certainty::Exact);
}

#[test]
fn exact_queries_report_exact() {
    let s = Set::parse("{ [i] : 0 <= i <= 9 }").unwrap();
    let (empty, cert) = with_limits(Limits::default(), || s.is_empty());
    assert!(!empty);
    assert_eq!(cert, Certainty::Exact);
}

#[test]
fn degradation_reasons_name_the_tripped_limit() {
    let c = tier2_unsat();
    omega::reset_sat_cache();
    let (_, cert) = with_limits(starving(), || c.is_sat());
    let reasons = cert.reasons();
    assert!(!reasons.is_empty());
    // The starving governor trips depth, budget or the row cap — never
    // overflow or the (unset) deadline.
    assert!(!reasons.contains(OmegaError::Overflow), "{reasons}");
    assert!(!reasons.contains(OmegaError::DeadlineExceeded), "{reasons}");
}

#[test]
fn unlimited_limits_never_degrade() {
    let c = tier2_unsat();
    omega::reset_sat_cache();
    let (sat, cert) = with_limits(Limits::unlimited(), || c.is_sat());
    assert!(!sat);
    assert_eq!(cert, Certainty::Exact);
}

/// Nested scopes: an inner degraded scope taints the outer certificate
/// (an outer observer must not claim exactness over a degraded subtree).
#[test]
fn inner_degradation_taints_outer_scope() {
    let c = tier2_unsat();
    omega::reset_sat_cache();
    let ((), outer) = with_limits(Limits::default(), || {
        let (_, inner) = with_limits(starving(), || c.is_sat());
        assert!(!inner.is_exact());
    });
    assert!(
        !outer.is_exact(),
        "outer scope must report the nested degradation"
    );
}

#[test]
fn parse_coefficient_overflow_is_recoverable() {
    const MAX: &str = "9223372036854775807";
    // parse_sum: MAX·i + MAX·i overflows when summing like terms.
    let err = Set::parse(&format!("{{ [i] : i*{MAX} + i*{MAX} >= 0 }}")).unwrap_err();
    assert!(
        err.message().contains("overflow"),
        "unexpected message: {err}"
    );
    assert!(err.position() > 0, "error must carry a source span: {err}");

    // Unary negation of i64::MIN-like coefficients must not panic either.
    let r = Set::parse(&format!("{{ [i] : -(i*{MAX} + i*{MAX}) >= 0 }}"));
    assert!(r.is_err());

    // A large-but-valid coefficient still parses.
    let ok = Set::parse(&format!("{{ [i] : i*{MAX} >= 0 }}"));
    assert!(ok.is_ok(), "{ok:?}");
}

#[test]
fn parse_literal_too_large_is_recoverable() {
    let err = Set::parse("{ [i] : i >= 92233720368547758080 }").unwrap_err();
    assert!(err.message().contains("too large"), "{err}");
}

/// `contains` on honest inputs stays exact even when intermediate
/// substitution values need i128: constant rows are decided exactly.
#[test]
fn contains_handles_huge_substituted_constants() {
    let s = Set::parse("[n] -> { [i] : i*4611686018427387902 <= n }").unwrap();
    // i = 4 makes the substituted row constant ≈ 4·(i64::MAX/2), out of
    // i64 — but the row is local-free, so it is decided exactly in i128.
    let ((), cert) = with_limits(Limits::default(), || {
        assert!(!s.contains(&[100], &[4]));
        assert!(s.contains(&[100], &[0]));
    });
    assert_eq!(cert, Certainty::Exact);
}
