//! Fault-armed persistence (`--features faults`): every injectable
//! disruption of the persistent cache's read and write paths
//! ([`omega::faults::PersistFault`]) must land on the structured
//! degradation the robustness contract promises — a truncated recovery, a
//! counted miss, or a disabled write path — never a panic and never a
//! wrong verdict.
//!
//! Kept in its own binary: the armed persist fault is process-global and
//! one-shot, so these tests serialize behind one mutex and must not share
//! a process with other code that drives the persistence hooks.

#![cfg(feature = "faults")]

use omega::faults::{clear_persist, inject_persist, PersistFault};
use omega::persist::{PersistError, Store, LOG_FILE};
use omega::{Conjunct, Space};
use std::path::PathBuf;
use std::sync::Mutex;

static ARMED: Mutex<()> = Mutex::new(());

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("omega-persist-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A one-record log: 28 header bytes plus one 30-byte sat record.
fn seeded_store(tag: &str) -> PathBuf {
    let dir = tmpdir(tag);
    let s = Store::open(&dir).unwrap();
    s.record_sat((1, 1), true);
    assert!(s.flush() > 0);
    dir
}

#[test]
fn io_fault_on_open_scan_degrades_to_local_caching() {
    let _g = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    clear_persist();
    let dir = seeded_store("open-io");
    // Op 1 is the header read, op 2 the body read; both paths must
    // surface as PersistError::Io, leaving the log untouched.
    for op in [1, 2] {
        inject_persist(op, PersistFault::Io);
        match Store::open(&dir) {
            Err(PersistError::Io(_)) => {}
            Err(other) => panic!("op {op}: expected Io, got {other:?}"),
            Ok(_) => panic!("op {op}: expected Io, got a working store"),
        }
        clear_persist();
    }
    // With the harness disarmed the same log opens clean.
    let s = Store::open(&dir).unwrap();
    assert_eq!(s.open_summary().sat_records, 1);
    assert_eq!(s.open_summary().truncated_bytes, 0);
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn io_fault_on_flush_disables_writes_but_warm_keeps_serving() {
    let _g = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    clear_persist();
    let dir = seeded_store("flush-io");
    #[cfg(feature = "stats")]
    let before = omega::stats::snapshot();
    let s = Store::open(&dir).unwrap();
    s.record_sat((2, 2), false);
    inject_persist(1, PersistFault::Io);
    assert_eq!(s.flush(), 0, "failed append must report zero bytes");
    clear_persist();
    assert!(s.write_disabled());
    // The warm tier is unaffected by the dead write path.
    assert_eq!(s.lookup_sat((1, 1)), Some(true));
    // Nothing further is even queued.
    s.record_sat((3, 3), true);
    assert_eq!(s.pending_bytes(), 0);
    assert_eq!(s.flush(), 0);
    #[cfg(feature = "stats")]
    assert!(
        omega::stats::snapshot().delta(&before).persist_degrade_io >= 1,
        "the injected flush failure must count a persist_degrade_io"
    );
    drop(s);
    // The log never saw the failed batch: a clean reopen has exactly the
    // pre-fault record.
    let s = Store::open(&dir).unwrap();
    assert_eq!(s.open_summary().sat_records, 1);
    assert_eq!(s.open_summary().truncated_bytes, 0);
    assert_eq!(s.lookup_sat((2, 2)), None);
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn short_write_tears_the_tail_and_reopen_recovers() {
    let _g = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    clear_persist();
    let dir = seeded_store("short-write");
    let log = dir.join(LOG_FILE);
    let intact = std::fs::metadata(&log).unwrap().len();
    let s = Store::open(&dir).unwrap();
    s.record_sat((2, 2), false);
    inject_persist(1, PersistFault::ShortWrite);
    assert_eq!(s.flush(), 0);
    clear_persist();
    assert!(s.write_disabled());
    drop(s);
    // Half of the 30-byte record landed — the moral SIGKILL mid-append.
    assert_eq!(std::fs::metadata(&log).unwrap().len(), intact + 15);
    let s = Store::open(&dir).unwrap();
    let sum = s.open_summary();
    assert_eq!(sum.sat_records, 1, "everything before the tear survives");
    assert_eq!(sum.truncated_bytes, 15, "the torn tail is dropped");
    assert_eq!(
        std::fs::metadata(&log).unwrap().len(),
        intact,
        "recovery trims the log back to its last intact record"
    );
    assert_eq!(s.lookup_sat((1, 1)), Some(true));
    assert_eq!(s.lookup_sat((2, 2)), None);
    // The recovered store is fully writable again.
    s.record_sat((3, 3), true);
    assert!(s.flush() > 0);
    drop(s);
    let s = Store::open(&dir).unwrap();
    assert_eq!(s.open_summary().sat_records, 2);
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bitflip_on_scan_truncates_at_the_corrupt_record() {
    let _g = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    clear_persist();
    let dir = tmpdir("scan-bitflip");
    {
        let s = Store::open(&dir).unwrap();
        s.record_sat((1, 1), true);
        s.record_sat((2, 2), true);
        s.record_sat((3, 3), true);
        assert!(s.flush() > 0);
    }
    #[cfg(feature = "stats")]
    let before = omega::stats::snapshot();
    // Open-path ops: 1 = header read, 2 = body read, 3.. = one per
    // record parse. Aim the flip at the second record's parse.
    inject_persist(4, PersistFault::BitFlip);
    let s = Store::open(&dir).unwrap();
    clear_persist();
    let sum = s.open_summary();
    assert_eq!(sum.sat_records, 1, "only the records before the flip load");
    assert_eq!(sum.truncated_bytes, 60, "records 2 and 3 are cut");
    assert_eq!(s.lookup_sat((1, 1)), Some(true));
    assert_eq!(s.lookup_sat((2, 2)), None);
    #[cfg(feature = "stats")]
    {
        let d = omega::stats::snapshot().delta(&before);
        assert!(d.persist_degrade_checksum >= 1);
        assert!(d.persist_truncations >= 1);
    }
    drop(s);
    let s = Store::open(&dir).unwrap();
    assert_eq!(s.open_summary().truncated_bytes, 0, "recovery is sticky");
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bitflip_on_gist_read_is_a_counted_miss_and_drops_the_entry() {
    let _g = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    clear_persist();
    let dir = tmpdir("gist-bitflip");
    let space = Space::new(&["n"], &["i"]);
    let mut g = Conjunct::universe(&space);
    g.add_constraint(&(omega::var(&space, 0) - 1).geq0());
    {
        let s = Store::open(&dir).unwrap();
        s.record_gist((9, 9), &g);
        assert!(s.flush() > 0);
    }
    let s = Store::open(&dir).unwrap();
    // Sanity: the clean read path serves the record (checksum re-verified
    // on every lookup).
    assert_eq!(s.lookup_gist((9, 9), &space), Some(g.clone()));
    #[cfg(feature = "stats")]
    let before = omega::stats::snapshot();
    inject_persist(1, PersistFault::BitFlip);
    assert_eq!(
        s.lookup_gist((9, 9), &space),
        None,
        "a flipped bit under the warm backing must read as a miss"
    );
    clear_persist();
    // The poisoned entry is gone for good, so the next solve re-persists.
    assert_eq!(s.lookup_gist((9, 9), &space), None);
    #[cfg(feature = "stats")]
    assert!(
        omega::stats::snapshot()
            .delta(&before)
            .persist_degrade_checksum
            >= 1
    );
    s.record_gist((9, 9), &g);
    assert!(s.pending_bytes() > 0, "the dropped key is re-recordable");
    assert!(s.flush() > 0);
    drop(s);
    let s = Store::open(&dir).unwrap();
    assert_eq!(s.lookup_gist((9, 9), &space), Some(g));
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unsupported_shot_is_spent_without_effect() {
    let _g = ARMED.lock().unwrap_or_else(|e| e.into_inner());
    clear_persist();
    let dir = tmpdir("spent-shot");
    let s = Store::open(&dir).unwrap();
    s.record_sat((1, 1), true);
    // A BitFlip landing on an append has nothing to flip: the shot is
    // consumed, the append goes through untouched.
    inject_persist(1, PersistFault::BitFlip);
    assert!(s.flush() > 0);
    assert!(!s.write_disabled());
    drop(s);
    // Harness already disarmed — this open must be clean.
    let s = Store::open(&dir).unwrap();
    assert_eq!(s.open_summary().sat_records, 1);
    assert_eq!(s.open_summary().truncated_bytes, 0);
    drop(s);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn persist_fault_tags_round_trip() {
    for (tag, fault) in [
        ("persist-io", PersistFault::Io),
        ("persist-short-write", PersistFault::ShortWrite),
        ("persist-bitflip", PersistFault::BitFlip),
    ] {
        assert_eq!(PersistFault::from_tag(tag), Some(fault));
    }
    assert_eq!(PersistFault::from_tag("bogus"), None);
    assert_eq!(PersistFault::ALL.len(), 3);
}
