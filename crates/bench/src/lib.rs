//! # bench-harness — regenerating the PLDI 2012 evaluation
//!
//! Shared measurement pipeline for the Table 1 / Figure 7 / Figure 8
//! experiments: run a [`chill::Kernel`] through both generators, collect
//! the paper's four metric columns (lines of generated code, code
//! generation time, downstream compile time, code performance), and verify
//! both tools execute identical statement traces.
//!
//! Substitutions relative to the paper's testbed are documented in
//! `DESIGN.md`: gcc compile time → the timed `polyir::passes::compile`
//! pipeline; hardware execution time → the `polyir` dynamic-cost model.
//! When a real `gcc` is on PATH, the [`gcc`] module additionally measures
//! actual `gcc -O3` compile times and compiled-binary run times — the
//! paper's literal methodology (`table1 --gcc`).

pub mod gcc;

use chill::Kernel;
use cloog::{Cloog, Options};
use codegenplus::{pad_statements, CodeGen, Generated, Statement};
use polyir::{CodeMetrics, CostModel, ExecConfig};
use std::time::{Duration, Instant};

/// Which generator to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tool {
    /// The paper's contribution at a given overhead-removal effort.
    CodeGenPlus {
        /// Loop nesting depth for overhead removal (paper default 1).
        effort: usize,
    },
    /// The Quilleré/CLooG-style baseline.
    Cloog {
        /// Baseline options.
        options: Options,
    },
}

impl Tool {
    /// The paper's default CodeGen+ configuration.
    pub fn codegenplus() -> Tool {
        Tool::CodeGenPlus { effort: 1 }
    }

    /// The baseline with default options.
    pub fn cloog() -> Tool {
        Tool::Cloog {
            options: Options::default(),
        }
    }
}

/// Measurements for one (kernel, tool) pair — one cell group of Table 1.
#[derive(Clone, Debug)]
pub struct ToolReport {
    /// Lines of generated code.
    pub lines: usize,
    /// Wall-clock code generation time.
    pub codegen_time: Duration,
    /// Wall-clock of the stand-in compiler pipeline.
    pub compile_time: Duration,
    /// Static metrics of the generated code.
    pub metrics: CodeMetrics,
    /// Dynamic cost under the default [`CostModel`] (performance proxy).
    pub dynamic_cost: u64,
    /// Statement instances executed (sanity: equal across tools).
    pub instances: u64,
    /// Bytes of generated C, counted exactly like the daemon counts its
    /// response body (trailing newline included), so a batch
    /// `QueryReport` matches the daemon's for the same kernel.
    pub bytes: usize,
    /// `exact` or `approximate:reason+reason` — the shared
    /// [`serve::report::certainty_tag`] vocabulary.
    pub certainty: String,
    /// Log-bucketed histogram of every code-generation repetition's
    /// wall-clock time; [`ToolReport::codegen_time`] is its minimum. The
    /// histogram keeps the full latency distribution mergeable across
    /// kernels and runs instead of a single number.
    pub codegen_hist: omega::trace::LogHistogram,
}

/// Pads and converts a kernel's statements for the generators.
pub fn statements_of(kernel: &Kernel) -> Vec<Statement> {
    let stmts: Vec<Statement> = kernel
        .nest
        .statements()
        .iter()
        .map(|s| Statement::new(s.name.clone(), s.domain.clone()).with_args(s.args.clone()))
        .collect();
    pad_statements(&stmts, 0)
}

/// Runs one tool on prepared statements.
///
/// # Panics
///
/// Panics if generation fails (the kernels are known-good inputs).
pub fn generate(stmts: &[Statement], tool: Tool) -> (Generated, Duration) {
    let t0 = Instant::now();
    let g = match tool {
        Tool::CodeGenPlus { effort } => CodeGen::new()
            .statements(stmts.to_vec())
            .effort(effort)
            .generate()
            .expect("codegen+ generation failed"),
        Tool::Cloog { options } => Cloog::new()
            .statements(stmts.to_vec())
            .options(options)
            .generate()
            .expect("cloog generation failed"),
    };
    (g, t0.elapsed())
}

/// Full measurement of one kernel under one tool.
///
/// # Panics
///
/// Panics when generation or execution fails.
pub fn measure(kernel: &Kernel, tool: Tool) -> ToolReport {
    let stmts = statements_of(kernel);
    // Minimum over a few repetitions: one-shot wall-clock readings on a
    // shared machine are far too noisy to compare tools, and the first
    // repetition additionally warms the satisfiability cache for both tools
    // symmetrically.
    let (g, mut codegen_time) = generate(&stmts, tool);
    let mut codegen_hist = omega::trace::LogHistogram::new();
    codegen_hist.record(codegen_time.as_nanos() as u64);
    let mut spent = codegen_time;
    let mut reps = 1;
    // Sub-millisecond kernels get many repetitions inside the time budget;
    // multi-millisecond ones still stop after a handful. The window has to
    // be wide enough that a scheduler stall on a busy shared host cannot
    // cover every repetition, or the min itself is an outlier.
    while reps < 100 && spent < Duration::from_millis(400) {
        let (_, t) = generate(&stmts, tool);
        codegen_hist.record(t.as_nanos() as u64);
        codegen_time = codegen_time.min(t);
        spent += t;
        reps += 1;
    }
    let t0 = Instant::now();
    let compiled = polyir::passes::compile(&g.code);
    let compile_time = t0.elapsed();
    let cfg = ExecConfig {
        record_trace: false,
        ..ExecConfig::default()
    };
    let run = polyir::execute_with(&compiled.optimized, &kernel.params, &cfg)
        .expect("generated code must execute");
    let cost = CostModel::default().cost(&run.counters);
    let code = g.to_c();
    ToolReport {
        lines: polyir::lines_of_code(&g.code, &g.names),
        codegen_time,
        compile_time,
        metrics: CodeMetrics::of(&g.code, &g.names),
        dynamic_cost: cost,
        instances: run.counters.stmt_execs,
        bytes: code.len() + usize::from(!code.ends_with('\n')),
        certainty: serve::report::certainty_tag(g.certainty),
        codegen_hist,
    }
}

/// One traced CodeGen+ generation of `kernel` against cold solver caches:
/// every pass and solver query records a span (and, when the collector has
/// a dump directory, every tier-2 query a replayable `.omega` dump) into
/// `collector`. The result is also run through the stand-in compiler under
/// the same collector so the `pass_*` spans are captured.
///
/// The caches are reset first because a warm cache answers everything at
/// the `cache` tier — the per-query call trees the trace exists to show
/// would be empty.
///
/// # Panics
///
/// Panics if generation fails (the kernels are known-good inputs).
pub fn trace_kernel(kernel: &Kernel, collector: &omega::trace::Collector) -> Generated {
    let stmts = statements_of(kernel);
    omega::reset_sat_cache();
    let g = CodeGen::new()
        .statements(stmts)
        .effort(1)
        .trace(collector.clone())
        .generate()
        .expect("codegen+ generation failed");
    omega::trace::with_collector(Some(collector.clone()), || {
        polyir::passes::compile(&g.code);
    });
    g
}

/// One Table 1 row: both tools measured on the same spaces, with the
/// derived ratios the paper reports.
#[derive(Clone, Debug)]
pub struct Row {
    /// Kernel name.
    pub name: &'static str,
    /// CLooG baseline measurements.
    pub cloog: ToolReport,
    /// CodeGen+ measurements.
    pub cgplus: ToolReport,
}

impl Row {
    /// Lines-of-code reduction (CLooG / CodeGen+).
    pub fn loc_reduction(&self) -> f64 {
        self.cloog.lines as f64 / self.cgplus.lines.max(1) as f64
    }

    /// Code-generation speedup (CLooG time / CodeGen+ time).
    pub fn codegen_speedup(&self) -> f64 {
        self.cloog.codegen_time.as_secs_f64() / self.cgplus.codegen_time.as_secs_f64().max(1e-9)
    }

    /// Compile-time speedup.
    pub fn compile_speedup(&self) -> f64 {
        self.cloog.compile_time.as_secs_f64() / self.cgplus.compile_time.as_secs_f64().max(1e-9)
    }

    /// Performance speedup (CLooG dynamic cost / CodeGen+ dynamic cost).
    pub fn perf_speedup(&self) -> f64 {
        self.cloog.dynamic_cost as f64 / self.cgplus.dynamic_cost.max(1) as f64
    }
}

/// Measures one kernel with both tools (a full Table 1 row).
pub fn compare(kernel: &Kernel) -> Row {
    let cgplus = measure(kernel, Tool::codegenplus());
    let cloog = measure(kernel, Tool::cloog());
    Row {
        name: kernel.name,
        cloog,
        cgplus,
    }
}

/// Verifies both tools execute the identical statement trace (the
/// correctness precondition for every Table 1 comparison).
///
/// # Panics
///
/// Panics on generation or execution failure.
pub fn traces_match(kernel: &Kernel) -> bool {
    let stmts = statements_of(kernel);
    let (a, _) = generate(&stmts, Tool::codegenplus());
    let (b, _) = generate(&stmts, Tool::cloog());
    let ra = polyir::execute(&a.code, &kernel.params).expect("cg+ execution");
    let rb = polyir::execute(&b.code, &kernel.params).expect("cloog execution");
    ra.trace == rb.trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_row_shape() {
        let k = chill::recipes::gemv(16);
        assert!(traces_match(&k));
        let row = compare(&k);
        assert!(row.loc_reduction() >= 1.0, "CLooG must not be smaller");
        assert_eq!(row.cgplus.instances, row.cloog.instances);
        assert!(row.cgplus.dynamic_cost > 0);
    }

    #[test]
    fn all_kernels_traces_match_small() {
        for k in chill::recipes::all(9) {
            assert!(traces_match(&k), "trace mismatch for {}", k.name);
        }
    }
}
