//! Regenerates Table 1 of the paper: for each of the five kernels, lines
//! of generated code, code generation time, (stand-in) compile time, and
//! the dynamic performance proxy for CLooG vs CodeGen+, with the ratio
//! columns the paper reports.
//!
//! Usage: `cargo run --release -p bench-harness --bin table1 [N] [--gcc]`
//! (N = problem size; default 64). With `--gcc` and a gcc on PATH, two
//! extra column groups report the *real* `gcc -O3` compile time and the
//! compiled binary's execution time — the paper's literal methodology.

use bench_harness::gcc::{gcc_available, measure_with_gcc};
use bench_harness::{compare, generate, statements_of, traces_match, Tool};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let use_gcc = args.iter().any(|a| a == "--gcc");
    let n: i64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let gcc_ok = use_gcc && gcc_available();
    if use_gcc && !gcc_ok {
        eprintln!("--gcc requested but no usable gcc found; skipping real-compiler columns");
    }
    println!("Table 1 — comparison of code generation using iteration spaces");
    println!("representing real optimization strategies (problem size n = {n})\n");
    println!(
        "{:6} | {:>7} {:>7} {:>6} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7} | {:>12} {:>12} {:>7}",
        "", "CLooG", "CG+", "Red.", "CLooG", "CG+", "Spdup", "CLooG", "CG+", "Spdup", "CLooG", "CG+", "Spdup"
    );
    println!(
        "{:6} | {:^22} | {:^29} | {:^29} | {:^33}",
        "kernel",
        "lines of code",
        "code generation time",
        "compile time",
        "performance (dyn. cost)"
    );
    println!("{}", "-".repeat(130));
    for kernel in chill::recipes::all(n) {
        #[cfg(feature = "stats")]
        let stats_before = omega::stats::snapshot();
        assert!(
            traces_match(&kernel),
            "generated code traces differ for {}",
            kernel.name
        );
        let row = compare(&kernel);
        print!(
            "{:6} | {:>7} {:>7} {:>5.2}x | {:>10.2?} {:>10.2?} {:>6.2}x | {:>10.2?} {:>10.2?} {:>6.2}x | {:>12} {:>12} {:>6.3}x",
            row.name,
            row.cloog.lines,
            row.cgplus.lines,
            row.loc_reduction(),
            row.cloog.codegen_time,
            row.cgplus.codegen_time,
            row.codegen_speedup(),
            row.cloog.compile_time,
            row.cgplus.compile_time,
            row.compile_speedup(),
            row.cloog.dynamic_cost,
            row.cgplus.dynamic_cost,
            row.perf_speedup(),
        );
        #[cfg(feature = "stats")]
        {
            // Verdicts the resource governor degraded to a conservative
            // answer while generating this kernel — expected 0 at the
            // default limits (every paper result rests on exact verdicts).
            let s = omega::stats::snapshot();
            let degraded = (s.sat_degraded - stats_before.sat_degraded)
                + (s.gist_degraded - stats_before.gist_degraded);
            print!(" | degraded {degraded}");
        }
        if gcc_ok {
            let stmts = statements_of(&kernel);
            let (cg, _) = generate(&stmts, Tool::codegenplus());
            let (cl, _) = generate(&stmts, Tool::cloog());
            let reps = 20;
            match (
                measure_with_gcc(&cl, &kernel.params, reps),
                measure_with_gcc(&cg, &kernel.params, reps),
            ) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.instances, b.instances, "gcc instance mismatch");
                    print!(
                        " | gcc: compile {:>8.2?} {:>8.2?} {:>5.2}x, run {:>9.2?} {:>9.2?} {:>5.3}x",
                        a.compile_time,
                        b.compile_time,
                        a.compile_time.as_secs_f64() / b.compile_time.as_secs_f64().max(1e-9),
                        a.run_time,
                        b.run_time,
                        a.run_time.as_secs_f64() / b.run_time.as_secs_f64().max(1e-12),
                    );
                }
                (a, b) => {
                    print!(" | gcc failed: {:?} {:?}", a.err(), b.err());
                }
            }
        }
        println!();
    }
    println!("\n(All rows verified: both tools execute identical statement traces.)");
}
