//! Regenerates Table 1 of the paper: for each of the five kernels, lines
//! of generated code, code generation time, (stand-in) compile time, and
//! the dynamic performance proxy for CLooG vs CodeGen+, with the ratio
//! columns the paper reports.
//!
//! Usage: `cargo run --release -p bench-harness --bin table1 [N] [--gcc]
//! [--json FILE] [--trace FILE.json [--force]] [--dump-dir DIR]
//! [--cache-dir DIR] [--profile FILE]`
//! (N = problem size; default 64). With `--gcc` and a gcc on PATH, two
//! extra column groups report the *real* `gcc -O3` compile time and the
//! compiled binary's execution time — the paper's literal methodology.
//!
//! With `--json FILE`, the per-kernel measurements are also written as a
//! machine-readable snapshot (see `BENCH_table1.json` at the repo root
//! for the committed baseline and `scripts/compare_bench.py` for the CI
//! regression gate that consumes it). Each row also embeds a `report`
//! object — the same `QueryReport` wide-event schema the `codegend`
//! daemon logs per job and serves at `/debug/requests` — so batch and
//! daemon cost attribution share one vocabulary
//! (`scripts/check_report.py` validates both sides).
//!
//! With `--trace FILE.json`, one extra cold-cache CodeGen+ generation per
//! kernel runs under a span collector; the merged trace is written as
//! Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`)
//! together with a hot-spot summary and per-span latency histograms. An
//! existing trace file is not overwritten unless `--force` is given. With
//! `--dump-dir DIR`, every tier-2 solver query of the traced runs is also
//! written as a replayable `.omega` dump (see `omega-replay`).
//!
//! With `--cache-dir DIR`, the run warm-starts from the crash-safe
//! persistent solver cache in that directory and flushes new exact
//! verdicts back at the end; the per-kernel `counters` in the `--json`
//! snapshot then report the `persist_*` hit/miss/degrade deltas. A broken
//! or unwritable cache degrades to process-local caching (reported on
//! stderr + counted), never a failure.
//!
//! With `--profile FILE`, the whole run executes under the sampling CPU
//! profiler (`telemetry::profile`, the same engine behind the daemon's
//! `/debug/pprof/profile`) and the collapsed-stack flamegraph text is
//! written to FILE — feed it to `flamegraph.pl` or
//! `scripts/check_profile.py`. Unsupported platforms warn and run
//! unprofiled.

use bench_harness::gcc::{gcc_available, measure_with_gcc};
use bench_harness::{compare, generate, statements_of, trace_kernel, traces_match, Tool};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut use_gcc = false;
    let mut force = false;
    let mut trace_path: Option<PathBuf> = None;
    let mut dump_dir: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut cache_dir: Option<PathBuf> = None;
    let mut profile_path: Option<PathBuf> = None;
    let mut n: i64 = 64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--gcc" => use_gcc = true,
            "--force" => force = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match args.next() {
                Some(p) => trace_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--trace requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--dump-dir" => match args.next() {
                Some(p) => dump_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--dump-dir requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--cache-dir" => match args.next() {
                Some(p) => cache_dir = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--cache-dir requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--profile" => match args.next() {
                Some(p) => profile_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--profile requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            other if !other.starts_with("--") => match other.parse() {
                Ok(v) => n = v,
                Err(_) => {
                    eprintln!("unrecognized argument {other}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(p) = &trace_path {
        if p.exists() && !force {
            eprintln!(
                "refusing to overwrite existing trace file {} (pass --force to overwrite)",
                p.display()
            );
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = &cache_dir {
        match omega::persist::init(dir) {
            Ok(s) => eprintln!(
                "persistent cache open at {} ({} sat / {} gist records, {} bytes truncated, warm tier {})",
                dir.display(),
                s.sat_records,
                s.gist_records,
                s.truncated_bytes,
                if s.mmap { "mmap" } else { "heap" },
            ),
            Err(e) => eprintln!(
                "persistent cache degraded ({}): {e}; continuing with process-local caching",
                e.as_str()
            ),
        }
    }
    let mut profiling = false;
    if profile_path.is_some() {
        match telemetry::profile::start(telemetry::profile::Options::default()) {
            Ok(()) => profiling = true,
            Err(e) => eprintln!(
                "--profile requested but the sampler is unavailable ({}); running unprofiled",
                e.as_str()
            ),
        }
    }
    let collector = (trace_path.is_some() || dump_dir.is_some()).then(omega::trace::Collector::new);
    if let (Some(c), Some(d)) = (&collector, &dump_dir) {
        c.dump_queries(d);
    }
    let gcc_ok = use_gcc && gcc_available();
    if use_gcc && !gcc_ok {
        eprintln!("--gcc requested but no usable gcc found; skipping real-compiler columns");
    }
    println!("Table 1 — comparison of code generation using iteration spaces");
    println!("representing real optimization strategies (problem size n = {n})\n");
    println!(
        "{:6} | {:>7} {:>7} {:>6} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7} | {:>12} {:>12} {:>7}",
        "", "CLooG", "CG+", "Red.", "CLooG", "CG+", "Spdup", "CLooG", "CG+", "Spdup", "CLooG", "CG+", "Spdup"
    );
    println!(
        "{:6} | {:^22} | {:^29} | {:^29} | {:^33}",
        "kernel",
        "lines of code",
        "code generation time",
        "compile time",
        "performance (dyn. cost)"
    );
    println!("{}", "-".repeat(130));
    // Tier-2 query totals across the traced generations, from the stats
    // counters; checked against the trace's root spans at the end.
    #[cfg(feature = "stats")]
    let mut expected_sat_exact = 0u64;
    #[cfg(feature = "stats")]
    let mut expected_gist_exact = 0u64;
    let mut json_rows: Vec<String> = Vec::new();
    for kernel in chill::recipes::all(n) {
        #[cfg(feature = "stats")]
        let stats_before = omega::stats::snapshot();
        assert!(
            traces_match(&kernel),
            "generated code traces differ for {}",
            kernel.name
        );
        // Solver activity attributable to *this* kernel: snapshot-diff
        // around the row, not process-cumulative totals (which would make
        // every row's numbers depend on iteration order).
        let row_before = omega::stats::snapshot();
        let row_t0 = std::time::Instant::now();
        let row = compare(&kernel);
        let row_ns = row_t0.elapsed().as_nanos() as u64;
        let row_delta = omega::stats::snapshot().delta(&row_before);
        #[cfg(feature = "stats")]
        let stats_delta = omega::stats::snapshot().delta(&stats_before);
        if json_path.is_some() {
            #[cfg(feature = "stats")]
            let counters = format!(
                ", \"counters\": {{{}}}",
                stats_delta
                    .fields()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            #[cfg(not(feature = "stats"))]
            let counters = String::new();
            // The same wide-event schema the codegend daemon logs per job
            // and serves at /debug/requests, so batch and daemon cost
            // attribution diff field-for-field (scripts/check_report.py
            // validates both). Phases stay empty here: the Table 1
            // measurements run untraced so timing stays undisturbed.
            let report = serve::report::QueryReport {
                id: format!("table1-{}", row.name),
                kind: "kernel",
                source: row.name.to_owned(),
                status: "ok",
                class: "batch",
                queue_ns: 0,
                ts_ms: serve::report::now_ms(),
                effort: 1,
                threads: codegenplus::CodeGen::new().resolved_threads(),
                intra_threads: codegenplus::CodeGen::new().resolved_intra_threads(),
                lines: row.cgplus.lines,
                bytes: row.cgplus.bytes,
                codegen_ns: row.cgplus.codegen_time.as_nanos() as u64,
                compile_ns: row.cgplus.compile_time.as_nanos() as u64,
                request_ns: row_ns,
                certainty: row.cgplus.certainty.clone(),
                dynamic_cost: Some(row.cgplus.dynamic_cost),
                phases: Vec::new(),
                counters: row_delta,
                slow: false,
                retained: None,
                error: None,
            };
            json_rows.push(format!(
                "    {{\"kernel\": {:?}, \"threads\": {}, \"cloog\": {}, \"cgplus\": {}{}, \"report\": {}}}",
                row.name,
                codegenplus::CodeGen::new().resolved_threads(),
                json_report(&row.cloog),
                json_report(&row.cgplus),
                counters,
                report.to_json()
            ));
        }
        print!(
            "{:6} | {:>7} {:>7} {:>5.2}x | {:>10.2?} {:>10.2?} {:>6.2}x | {:>10.2?} {:>10.2?} {:>6.2}x | {:>12} {:>12} {:>6.3}x",
            row.name,
            row.cloog.lines,
            row.cgplus.lines,
            row.loc_reduction(),
            row.cloog.codegen_time,
            row.cgplus.codegen_time,
            row.codegen_speedup(),
            row.cloog.compile_time,
            row.cgplus.compile_time,
            row.compile_speedup(),
            row.cloog.dynamic_cost,
            row.cgplus.dynamic_cost,
            row.perf_speedup(),
        );
        #[cfg(feature = "stats")]
        {
            // Verdicts the resource governor degraded to a conservative
            // answer while generating this kernel — expected 0 at the
            // default limits (every paper result rests on exact verdicts).
            let degraded = stats_delta.sat_degraded + stats_delta.gist_degraded;
            print!(" | degraded {degraded}");
        }
        if gcc_ok {
            let stmts = statements_of(&kernel);
            let (cg, _) = generate(&stmts, Tool::codegenplus());
            let (cl, _) = generate(&stmts, Tool::cloog());
            let reps = 20;
            match (
                measure_with_gcc(&cl, &kernel.params, reps),
                measure_with_gcc(&cg, &kernel.params, reps),
            ) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.instances, b.instances, "gcc instance mismatch");
                    print!(
                        " | gcc: compile {:>8.2?} {:>8.2?} {:>5.2}x, run {:>9.2?} {:>9.2?} {:>5.3}x",
                        a.compile_time,
                        b.compile_time,
                        a.compile_time.as_secs_f64() / b.compile_time.as_secs_f64().max(1e-9),
                        a.run_time,
                        b.run_time,
                        a.run_time.as_secs_f64() / b.run_time.as_secs_f64().max(1e-12),
                    );
                }
                (a, b) => {
                    print!(" | gcc failed: {:?} {:?}", a.err(), b.err());
                }
            }
        }
        println!();
        if let Some(c) = &collector {
            println!("         cg+ codegen reps: {}", row.cgplus.codegen_hist);
            #[cfg(feature = "stats")]
            let before = omega::stats::snapshot();
            trace_kernel(&kernel, c);
            #[cfg(feature = "stats")]
            {
                let after = omega::stats::snapshot();
                expected_sat_exact += after.exact_solves() - before.exact_solves();
                expected_gist_exact += after.gist_misses - before.gist_misses;
            }
        }
    }
    println!("\n(All rows verified: both tools execute identical statement traces.)");
    if profiling {
        match telemetry::profile::stop() {
            Ok(profile) => {
                let p = profile_path.as_ref().unwrap();
                let resolved = profile.resolve();
                if let Err(e) = std::fs::write(p, resolved.collapsed()) {
                    eprintln!("cannot write profile {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
                println!(
                    "collapsed-stack cpu profile written to {} ({} samples, {} dropped)",
                    p.display(),
                    profile.samples.len(),
                    profile.dropped
                );
            }
            Err(e) => {
                eprintln!("profiler stop failed: {}", e.as_str());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(c) = &collector {
        let trace = c.finish();
        assert!(trace.is_well_formed(), "recorded trace is not well-formed");
        println!("\n--- trace summary (cold-cache CodeGen+ runs) ---");
        print!("{}", trace.hotspots(14));
        println!("\nper-span latency (log-bucketed, merged across threads):");
        for name in ["sat_query", "sat_exact", "gist_query", "gist_exact"] {
            let h = trace.histogram(name);
            if h.count() > 0 {
                println!("{name:<12} {h}");
            }
        }
        #[cfg(feature = "stats")]
        {
            let sat_spans = trace.count_named("sat_exact") as u64;
            let gist_spans = trace.count_named("gist_exact") as u64;
            assert_eq!(
                sat_spans, expected_sat_exact,
                "sat_exact spans must equal tier-2 sat solves per omega::stats"
            );
            assert_eq!(
                gist_spans, expected_gist_exact,
                "gist_exact spans must equal tier-2 gist computations per omega::stats"
            );
            println!(
                "tier-2 query spans match omega::stats: sat_exact {sat_spans}, gist_exact {gist_spans}"
            );
        }
        if let Some(p) = &trace_path {
            let file = match std::fs::File::create(p) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("cannot create trace file {}: {e}", p.display());
                    return ExitCode::FAILURE;
                }
            };
            let mut w = std::io::BufWriter::new(file);
            if let Err(e) = trace.write_chrome_json(&mut w) {
                eprintln!("cannot write trace file {}: {e}", p.display());
                return ExitCode::FAILURE;
            }
            println!(
                "chrome trace written to {} ({} spans, {} roots)",
                p.display(),
                trace.len(),
                trace.roots.len()
            );
        }
        if let Some(d) = &dump_dir {
            println!("replayable query dumps in {}", d.display());
        }
    }
    if let Some(p) = &json_path {
        let body = format!(
            "{{\n  \"version\": 1,\n  \"n\": {n},\n  \"rows\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n")
        );
        if let Err(e) = std::fs::write(p, body) {
            eprintln!("cannot write bench snapshot {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
        println!("bench snapshot written to {}", p.display());
    }
    if cache_dir.is_some() {
        omega::persist::flush();
    }
    ExitCode::SUCCESS
}

/// One tool's cell group as a JSON object. Timings are nanoseconds; only
/// `codegen_ns` is compared (with a tolerance) by `scripts/compare_bench.py`
/// — `lines`, `dynamic_cost`, and `instances` are deterministic and must
/// match the committed baseline exactly.
fn json_report(r: &bench_harness::ToolReport) -> String {
    format!(
        "{{\"lines\": {}, \"codegen_ns\": {}, \"compile_ns\": {}, \"dynamic_cost\": {}, \"instances\": {}}}",
        r.lines,
        r.codegen_time.as_nanos(),
        r.compile_time.as_nanos(),
        r.dynamic_cost,
        r.instances
    )
}
