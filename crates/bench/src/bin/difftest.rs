//! The CI fuzz lane: drive seeded random iteration spaces through the
//! CLooG baseline and CodeGen+ at every effort × thread count, check
//! every run against the `polyir` enumeration oracle, and on the first
//! discrepancy shrink to a minimal reproducer with full artifacts.
//!
//! Usage:
//!   difftest [--seeds N] [--start S] [--time-budget DUR] [--minimize]
//!            [--intra N] [--out DIR] [--cache-dir DIR]
//!            [--replay FILE.difftest]
//!
//! * `--seeds N`       check seeds `S .. S+N` (default 1000)
//! * `--start S`       first seed (default 0)
//! * `--time-budget D` stop early after D (`90s`, `20m`, `1h`, or bare
//!   seconds); with a budget the seed count is a cap, not a target
//! * `--minimize`      shrink a failing case before writing artifacts
//! * `--intra N`       additionally generate every configuration with an
//!   intra-query task budget of N (default: budget 1 only), asserting
//!   byte-identical output on that axis too
//! * `--out DIR`       artifact directory (default `difftest-out`)
//! * `--cache-dir DIR` open a persistent solver cache at DIR: exact
//!   verdicts recorded by earlier runs are served without re-solving, and
//!   this run's new verdicts are flushed back on exit — fuzzing and
//!   replay must be deterministic across cache states, so a warm cache
//!   only changes speed, never outcomes
//! * `--replay FILE`   check one committed `.difftest` case instead of
//!   fuzzing (reproduces a CI failure locally)
//!
//! Exit status: 0 = no discrepancy, 1 = discrepancy found (artifacts
//! written), 2 = usage or I/O error.
//!
//! On failure the tool writes into `--out`:
//! * `case-<seed>.difftest`       the original failing case
//! * `case-<seed>.min.difftest`   the shrunk reproducer (with `--minimize`)
//! * `queries/*.omega`            omega-replay dumps of every tier-2
//!   solver query of one cold-cache CodeGen+ run of the (minimized)
//!   case at the failing configuration

use codegenplus::diff::{codegen_for, GenConfig};
use difftest::{check_case, parse_case, shrink, CaseOutcome, DiffCase};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn parse_duration(s: &str) -> Option<Duration> {
    let (num, mult) = match s.as_bytes().last()? {
        b's' => (&s[..s.len() - 1], 1),
        b'm' => (&s[..s.len() - 1], 60),
        b'h' => (&s[..s.len() - 1], 3600),
        _ => (s, 1),
    };
    num.parse::<u64>()
        .ok()
        .map(|v| Duration::from_secs(v * mult))
}

fn main() -> ExitCode {
    let mut seeds: u64 = 1000;
    let mut start: u64 = 0;
    let mut budget: Option<Duration> = None;
    let mut minimize = false;
    let mut intra: usize = 1;
    let mut out = PathBuf::from("difftest-out");
    let mut cache_dir: Option<PathBuf> = None;
    let mut replay: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| {
            args.next().ok_or_else(|| {
                eprintln!("{flag} requires an argument");
            })
        };
        match a.as_str() {
            "--seeds" => match val("--seeds").map(|v| v.parse::<u64>()) {
                Ok(Ok(v)) => seeds = v,
                _ => return ExitCode::from(2),
            },
            "--start" => match val("--start").map(|v| v.parse::<u64>()) {
                Ok(Ok(v)) => start = v,
                _ => return ExitCode::from(2),
            },
            "--time-budget" => match val("--time-budget").map(|v| parse_duration(&v)) {
                Ok(Some(d)) => budget = Some(d),
                _ => {
                    eprintln!("--time-budget takes e.g. 90s, 20m, 1h");
                    return ExitCode::from(2);
                }
            },
            "--minimize" => minimize = true,
            "--intra" => match val("--intra").map(|v| v.parse::<usize>()) {
                Ok(Ok(v)) if v >= 1 => intra = v,
                _ => {
                    eprintln!("--intra takes a task budget >= 1");
                    return ExitCode::from(2);
                }
            },
            "--out" => match val("--out") {
                Ok(p) => out = PathBuf::from(p),
                Err(()) => return ExitCode::from(2),
            },
            "--cache-dir" => match val("--cache-dir") {
                Ok(p) => cache_dir = Some(PathBuf::from(p)),
                Err(()) => return ExitCode::from(2),
            },
            "--replay" => match val("--replay") {
                Ok(p) => replay = Some(PathBuf::from(p)),
                Err(()) => return ExitCode::from(2),
            },
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(dir) = &cache_dir {
        match omega::persist::init(dir) {
            Ok(s) => eprintln!(
                "persistent cache open at {} ({} sat / {} gist records, {} bytes truncated, warm tier {})",
                dir.display(),
                s.sat_records,
                s.gist_records,
                s.truncated_bytes,
                if s.mmap { "mmap" } else { "heap" },
            ),
            Err(e) => eprintln!(
                "persistent cache degraded ({}): {e}; continuing with process-local caching",
                e.as_str()
            ),
        }
    }

    if let Some(path) = replay {
        let code = replay_one(&path);
        if cache_dir.is_some() {
            omega::persist::flush();
        }
        return code;
    }

    // Budget 1 always runs (it is the executed configuration); --intra N
    // adds the parallel variant to the determinism matrix.
    let mut opts = difftest::CheckOptions::default();
    if intra > 1 {
        opts.intra.push(intra);
    }

    let t0 = Instant::now();
    let (mut pass, mut skip) = (0u64, 0u64);
    let mut checked = 0u64;
    // With a time budget the seed count is open-ended, so CI logs get a
    // periodic heartbeat instead of the every-500-seeds progress line.
    let beat_every = Duration::from_secs(10);
    let mut next_beat = beat_every;
    for seed in start..start.saturating_add(seeds) {
        if let Some(b) = budget {
            if t0.elapsed() >= b {
                println!("time budget exhausted after {checked} seeds");
                break;
            }
        }
        let (case, outcome) = difftest::fuzz_one_with(seed, &opts);
        checked += 1;
        match outcome {
            CaseOutcome::Pass => pass += 1,
            CaseOutcome::Skip(_) => skip += 1,
            CaseOutcome::Fail(d) => {
                println!("seed {seed}: DISCREPANCY {d}");
                println!("{case}");
                if cache_dir.is_some() {
                    // Exact verdicts stay valid even when codegen itself
                    // disagrees with the oracle — keep them for the rerun.
                    omega::persist::flush();
                }
                return match write_artifacts(&out, seed, &case, minimize) {
                    Ok(()) => ExitCode::FAILURE,
                    Err(e) => {
                        eprintln!("cannot write artifacts to {}: {e}", out.display());
                        ExitCode::from(2)
                    }
                };
            }
        }
        if let Some(b) = budget {
            if t0.elapsed() >= next_beat {
                println!(
                    "heartbeat: {checked} seeds done ({pass} pass, {skip} skip), {:.1?} elapsed of {:.0?} budget",
                    t0.elapsed(),
                    b
                );
                next_beat = t0.elapsed() + beat_every;
            }
        } else if checked.is_multiple_of(500) {
            println!(
                "{checked} seeds in {:.1?}: {pass} pass, {skip} skip",
                t0.elapsed()
            );
        }
    }
    println!(
        "clean: {checked} seeds in {:.1?} ({pass} pass, {skip} skip, 0 discrepancies)",
        t0.elapsed()
    );
    if cache_dir.is_some() {
        omega::persist::flush();
    }
    ExitCode::SUCCESS
}

fn replay_one(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let case = match parse_case(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let outcome = difftest::check_statements(
        &case.stmts,
        &case.params,
        &codegenplus::diff::generate_for,
        &difftest::CheckOptions::default(),
    );
    match outcome {
        CaseOutcome::Pass => {
            println!("{}: pass", path.display());
            ExitCode::SUCCESS
        }
        CaseOutcome::Skip(why) => {
            println!("{}: skipped ({why})", path.display());
            ExitCode::SUCCESS
        }
        CaseOutcome::Fail(d) => {
            println!("{}: DISCREPANCY {d}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Writes the failing case, its minimized form, and an omega-replay dump
/// of the solver queries behind one cold-cache generation of it.
fn write_artifacts(out: &Path, seed: u64, case: &DiffCase, minimize: bool) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    std::fs::write(out.join(format!("case-{seed}.difftest")), case.render())?;
    let final_case = if minimize {
        let original_kind = check_case(case).discrepancy().map(|d| d.kind);
        let still_fails =
            |c: &DiffCase| check_case(c).discrepancy().map(|d| d.kind) == original_kind;
        let min = shrink(case, &still_fails);
        println!(
            "minimized from {} statements / {} constraints to {} / {}:\n{min}",
            case.stmts.len(),
            case.n_constraints(),
            min.stmts.len(),
            min.n_constraints()
        );
        std::fs::write(out.join(format!("case-{seed}.min.difftest")), min.render())?;
        min
    } else {
        case.clone()
    };

    // Provenance: replayable dumps of every tier-2 query behind one
    // cold-cache CodeGen+ run of the reproducer at the failing config.
    let cfg = check_case(&final_case)
        .discrepancy()
        .and_then(|d| d.config)
        .unwrap_or(GenConfig {
            effort: 1,
            threads: 1,
            intra: 1,
        });
    let qdir = out.join("queries");
    std::fs::create_dir_all(&qdir)?;
    omega::reset_sat_cache();
    let collector = omega::trace::Collector::new();
    collector.dump_queries(&qdir);
    let _ = codegen_for(&final_case.statements(), &cfg)
        .trace(collector.clone())
        .generate();
    let n = std::fs::read_dir(&qdir)?.count();
    println!(
        "artifacts in {}: case-{seed}.difftest{} and {n} .omega query dumps",
        out.display(),
        if minimize {
            format!(", case-{seed}.min.difftest")
        } else {
            String::new()
        }
    );
    Ok(())
}
