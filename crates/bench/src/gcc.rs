//! Real-compiler measurements: when `gcc` is available, compile the
//! generated code with `gcc -O3` (the paper's actual compile-time column)
//! and time the compiled binary (the paper's actual performance column).
//! Statement payloads are volatile increments, so the measured differences
//! come from the generated control flow — precisely the effect the paper
//! attributes its speedups to.

use codegenplus::Generated;
use polyir::print::to_c_program;
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

/// Results of compiling and running generated code with a real compiler.
#[derive(Clone, Debug)]
pub struct GccReport {
    /// Wall-clock time of `gcc -O3 -c`.
    pub compile_time: Duration,
    /// Reported execution time of the compiled scan (seconds), averaged
    /// over the repetitions performed inside the binary.
    pub run_time: Duration,
    /// Statement instances counted by the binary (correctness check).
    pub instances: u64,
}

/// Is a usable `gcc` on PATH?
pub fn gcc_available() -> bool {
    Command::new("gcc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Builds the driver C file around the generated program.
fn driver_source(g: &Generated, reps: u64) -> String {
    let mut src = String::new();
    src.push_str("#include <stdio.h>\n#include <time.h>\n");
    src.push_str("static volatile long acc;\n");
    // Statement macros: a volatile increment keeps every instance alive
    // under -O3 without adding data-dependent work.
    let mut ids = Vec::new();
    collect_stmt_ids(&g.code, &mut ids);
    for id in &ids {
        src.push_str(&format!("#define {}(...) (acc += 1)\n", g.names.stmt(*id)));
    }
    src.push_str(&to_c_program(&g.code, &g.names, "scan"));
    let params: Vec<String> = g
        .names
        .params
        .iter()
        .enumerate()
        .map(|(i, _)| format!("(long)atol(argv[{}])", i + 1))
        .collect();
    src.push_str(&format!(
        r#"
int main(int argc, char **argv) {{
    (void)argc;
    long reps = {reps};
    struct timespec t0, t1;
    clock_gettime(CLOCK_MONOTONIC, &t0);
    for (long r = 0; r < reps; r++) {{
        scan({});
    }}
    clock_gettime(CLOCK_MONOTONIC, &t1);
    double secs = (t1.tv_sec - t0.tv_sec) + 1e-9 * (t1.tv_nsec - t0.tv_nsec);
    printf("%.9f %ld\n", secs / reps, (long)acc / reps);
    return 0;
}}
"#,
        params.join(", ")
    ));
    src
}

fn collect_stmt_ids(s: &polyir::Stmt, out: &mut Vec<usize>) {
    match s {
        polyir::Stmt::Seq(items) => items.iter().for_each(|i| collect_stmt_ids(i, out)),
        polyir::Stmt::Loop { body, .. } | polyir::Stmt::Assign { body, .. } => {
            collect_stmt_ids(body, out)
        }
        polyir::Stmt::If { then_, else_, .. } => {
            collect_stmt_ids(then_, out);
            if let Some(e) = else_ {
                collect_stmt_ids(e, out);
            }
        }
        polyir::Stmt::Call { stmt, .. } => {
            if !out.contains(stmt) {
                out.push(*stmt);
            }
        }
        polyir::Stmt::Nop => {}
    }
}

/// Compiles generated code with `gcc -O3` and runs it.
///
/// # Errors
///
/// Returns a human-readable error when gcc fails or the binary misbehaves.
pub fn measure_with_gcc(g: &Generated, params: &[i64], reps: u64) -> Result<GccReport, String> {
    let dir = std::env::temp_dir().join(format!(
        "cgplus-gcc-{}-{}",
        std::process::id(),
        unique_token()
    ));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let c_path: PathBuf = dir.join("scan.c");
    let o_path: PathBuf = dir.join("scan");
    {
        let mut f = std::fs::File::create(&c_path).map_err(|e| e.to_string())?;
        f.write_all(driver_source(g, reps).as_bytes())
            .map_err(|e| e.to_string())?;
    }
    let t0 = Instant::now();
    let out = Command::new("gcc")
        .arg("-O3")
        .arg("-o")
        .arg(&o_path)
        .arg(&c_path)
        .arg("-lm")
        .output()
        .map_err(|e| e.to_string())?;
    let compile_time = t0.elapsed();
    if !out.status.success() {
        return Err(format!(
            "gcc failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let mut cmd = Command::new(&o_path);
    for p in params {
        cmd.arg(p.to_string());
    }
    let out = cmd.output().map_err(|e| e.to_string())?;
    if !out.status.success() {
        return Err("compiled scan crashed".to_owned());
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let mut it = text.split_whitespace();
    let secs: f64 = it
        .next()
        .ok_or("missing timing")?
        .parse()
        .map_err(|_| "bad timing")?;
    let instances: u64 = it
        .next()
        .ok_or("missing count")?
        .parse()
        .map_err(|_| "bad count")?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(GccReport {
        compile_time,
        run_time: Duration::from_secs_f64(secs.max(0.0)),
        instances,
    })
}

fn unique_token() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, statements_of, Tool};

    #[test]
    fn gcc_roundtrip_counts_instances() {
        if !gcc_available() {
            eprintln!("gcc not available; skipping");
            return;
        }
        let k = chill::recipes::gemv(24);
        let stmts = statements_of(&k);
        let (g, _) = generate(&stmts, Tool::codegenplus());
        let r = measure_with_gcc(&g, &k.params, 3).expect("gcc pipeline");
        assert_eq!(
            r.instances,
            24 * 24,
            "compiled code must cover all instances"
        );
        assert!(r.compile_time > Duration::ZERO);
    }

    #[test]
    fn gcc_both_tools_agree_on_instances() {
        if !gcc_available() {
            eprintln!("gcc not available; skipping");
            return;
        }
        let k = chill::recipes::qr(20);
        let stmts = statements_of(&k);
        let (a, _) = generate(&stmts, Tool::codegenplus());
        let (b, _) = generate(&stmts, Tool::cloog());
        let ra = measure_with_gcc(&a, &k.params, 2).unwrap();
        let rb = measure_with_gcc(&b, &k.params, 2).unwrap();
        assert_eq!(ra.instances, rb.instances);
    }
}
