//! Microbenchmarks for the two solver hot loops the cache-friendly row
//! representation targets: Fourier–Motzkin elimination (`project_out`) and
//! the gist criterion, each run over the actual conjunct shapes of the
//! Table 1 kernels — triangular gemm/qr/lu bounds, strided swim domains,
//! rectangular gemv bands — rather than synthetic systems.

use bench_harness::statements_of;
use criterion::{criterion_group, criterion_main, Criterion};
use omega::Set;

/// Per-kernel statement domains, the conjunct shapes every scan pass
/// projects and gists.
fn domains(kernel: &chill::Kernel) -> Vec<Set> {
    statements_of(kernel)
        .into_iter()
        .map(|s| s.domain)
        .collect()
}

/// FM elimination over every suffix of every domain: eliminating the
/// innermost variable first, then the two innermost, and so on — the
/// projection ladder the scanner walks when computing per-level contexts.
fn project_ladder(domains: &[Set]) -> usize {
    let mut kept = 0;
    for d in domains {
        let n_vars = d.space().n_vars();
        for level in 1..n_vars {
            let p = d.project_out(level, n_vars - level);
            kept += usize::from(!p.is_empty());
        }
    }
    kept
}

/// The gist criterion at every loop level: simplify each domain against
/// its own projected prefix, the exact query stream `initAST` issues.
fn gist_ladder(domains: &[Set]) -> usize {
    let mut nontrivial = 0;
    for d in domains {
        let n_vars = d.space().n_vars();
        for level in 1..n_vars {
            let ctx = d.project_out(level, n_vars - level);
            let g = d.gist(&ctx);
            nontrivial += usize::from(!g.is_empty());
        }
    }
    nontrivial
}

fn bench_fm_elimination(c: &mut Criterion) {
    for kernel in chill::recipes::all(64) {
        let domains = domains(&kernel);
        c.bench_function(&format!("fm_project_{}", kernel.name), |b| {
            b.iter(|| {
                // Cold caches each iteration so the FM loops themselves are
                // measured, not memo hits.
                omega::reset_sat_cache();
                project_ladder(&domains)
            })
        });
    }
}

fn bench_gist_criterion(c: &mut Criterion) {
    for kernel in chill::recipes::all(64) {
        let domains = domains(&kernel);
        c.bench_function(&format!("gist_{}_cold", kernel.name), |b| {
            b.iter(|| {
                omega::reset_sat_cache();
                gist_ladder(&domains)
            })
        });
        // Warm: repeat queries land in the sharded gist cache — the
        // steady state once sibling subtrees re-ask the same gists.
        c.bench_function(&format!("gist_{}_warm", kernel.name), |b| {
            omega::reset_sat_cache();
            gist_ladder(&domains);
            b.iter(|| gist_ladder(&domains))
        });
    }
}

criterion_group!(benches, bench_fm_elimination, bench_gist_criterion);
criterion_main!(benches);
