//! Criterion benchmarks for the Figure 7 and Figure 8 experiments: the
//! overhead/code-size trade-off across effort levels, and the stride /
//! if-simplification examples.

use codegenplus::{CodeGen, Statement};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use omega::Set;

fn figure7_statements() -> Vec<Statement> {
    [
        "[n] -> { [i,j] : 1 <= i <= 100 && j = 0 && n >= 2 }",
        "[n] -> { [i,j] : 1 <= i <= 100 && 1 <= j <= 100 && n >= 2 }",
        "[n] -> { [i,j] : 1 <= i <= 100 && 1 <= j <= 100 }",
    ]
    .iter()
    .enumerate()
    .map(|(i, d)| Statement::new(format!("s{i}"), Set::parse(d).unwrap()))
    .collect()
}

fn bench_fig7_tradeoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_tradeoff");
    let stmts = figure7_statements();
    for effort in 0..=2usize {
        group.bench_with_input(
            BenchmarkId::new("codegen", effort),
            &effort,
            |b, &effort| {
                b.iter(|| {
                    CodeGen::new()
                        .statements(stmts.clone())
                        .effort(effort)
                        .generate()
                        .unwrap()
                })
            },
        );
        // Execution cost of the generated variant.
        let g = CodeGen::new()
            .statements(stmts.clone())
            .effort(effort)
            .generate()
            .unwrap();
        let cfg = polyir::ExecConfig {
            record_trace: false,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("execute", effort), &g.code, |b, code| {
            b.iter(|| polyir::execute_with(code, &[50], &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_fig8_strides(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_strides");
    let fig8a = Statement::new(
        "s0",
        Set::parse(
            "[n] -> { [i,j] : 1 <= i && i <= n && i <= j && j <= n && exists(a, b : i = 1 + 4a && j = i + 3b) }",
        )
        .unwrap(),
    );
    group.bench_function("fig8a_codegenplus", |b| {
        b.iter(|| CodeGen::new().statement(fig8a.clone()).generate().unwrap())
    });
    group.bench_function("fig8a_cloog", |b| {
        b.iter(|| {
            cloog::Cloog::new()
                .statement(fig8a.clone())
                .generate()
                .unwrap()
        })
    });
    let fig8d: Vec<Statement> = [
        "[n] -> { [i] : 1 <= i <= n && exists(a : i = 4a) }",
        "[n] -> { [i] : 1 <= i <= n && exists(a : i = 4a + 2) }",
    ]
    .iter()
    .enumerate()
    .map(|(i, d)| Statement::new(format!("s{i}"), Set::parse(d).unwrap()))
    .collect();
    group.bench_function("fig8d_codegenplus", |b| {
        b.iter(|| CodeGen::new().statements(fig8d.clone()).generate().unwrap())
    });
    group.bench_function("fig8d_cloog", |b| {
        b.iter(|| {
            cloog::Cloog::new()
                .statements(fig8d.clone())
                .generate()
                .unwrap()
        })
    });
    // Runtime comparison: CodeGen+'s if/else vs CLooG's two mod guards.
    let cfg = polyir::ExecConfig {
        record_trace: false,
        ..Default::default()
    };
    let cg = CodeGen::new().statements(fig8d.clone()).generate().unwrap();
    let cl = cloog::Cloog::new().statements(fig8d).generate().unwrap();
    group.bench_with_input(
        BenchmarkId::new("fig8d_exec", "codegenplus"),
        &cg.code,
        |b, code| b.iter(|| polyir::execute_with(code, &[2000], &cfg).unwrap()),
    );
    group.bench_with_input(
        BenchmarkId::new("fig8d_exec", "cloog"),
        &cl.code,
        |b, code| b.iter(|| polyir::execute_with(code, &[2000], &cfg).unwrap()),
    );
    group.finish();
}

criterion_group!(benches, bench_fig7_tradeoff, bench_fig8_strides);
criterion_main!(benches);
