//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! CodeGen+ with and without if-merging (the paper's second algorithm),
//! effort-level sweep (first algorithm), and CLooG compaction on/off.

use bench_harness::statements_of;
use codegenplus::CodeGen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_merge_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_merge_ifs");
    group.sample_size(10);
    let cfg = polyir::ExecConfig {
        record_trace: false,
        ..Default::default()
    };
    for kernel in chill::recipes::all(32) {
        let stmts = statements_of(&kernel);
        for merge in [true, false] {
            let g = CodeGen::new()
                .statements(stmts.clone())
                .merge_ifs(merge)
                .generate()
                .unwrap();
            group.bench_with_input(
                BenchmarkId::new(
                    format!("exec_{}", if merge { "merged" } else { "unmerged" }),
                    kernel.name,
                ),
                &g.code,
                |b, code| b.iter(|| polyir::execute_with(code, &kernel.params, &cfg).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_effort_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_effort");
    group.sample_size(10);
    let cfg = polyir::ExecConfig {
        record_trace: false,
        ..Default::default()
    };
    let kernel = chill::recipes::swim(32);
    let stmts = statements_of(&kernel);
    for effort in 0..=3usize {
        let g = CodeGen::new()
            .statements(stmts.clone())
            .effort(effort)
            .generate()
            .unwrap();
        group.bench_with_input(BenchmarkId::new("swim_exec", effort), &g.code, |b, code| {
            b.iter(|| polyir::execute_with(code, &kernel.params, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cloog_compaction");
    group.sample_size(10);
    for kernel in chill::recipes::all(32) {
        let stmts = statements_of(&kernel);
        for compact in [true, false] {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("codegen_{}", if compact { "compact" } else { "raw" }),
                    kernel.name,
                ),
                &stmts,
                |b, stmts| {
                    b.iter(|| {
                        cloog::Cloog::new()
                            .statements(stmts.clone())
                            .options(cloog::Options {
                                compact,
                                stop_level: None,
                            })
                            .generate()
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merge_ablation,
    bench_effort_sweep,
    bench_compaction
);
criterion_main!(benches);
