//! Criterion benchmarks for the Table 1 code-generation-time column: both
//! tools on all five kernels, plus the downstream compile-time stand-in and
//! the dynamic execution of the generated code.

use bench_harness::{generate, statements_of, Tool};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_codegen");
    group.sample_size(10);
    for kernel in chill::recipes::all(32) {
        let stmts = statements_of(&kernel);
        group.bench_with_input(
            BenchmarkId::new("codegenplus", kernel.name),
            &stmts,
            |b, stmts| b.iter(|| generate(stmts, Tool::codegenplus())),
        );
        group.bench_with_input(
            BenchmarkId::new("cloog", kernel.name),
            &stmts,
            |b, stmts| b.iter(|| generate(stmts, Tool::cloog())),
        );
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_compile");
    group.sample_size(20);
    for kernel in chill::recipes::all(32) {
        let stmts = statements_of(&kernel);
        let (cg, _) = generate(&stmts, Tool::codegenplus());
        let (cl, _) = generate(&stmts, Tool::cloog());
        group.bench_with_input(
            BenchmarkId::new("codegenplus", kernel.name),
            &cg.code,
            |b, code| b.iter(|| polyir::passes::compile(code)),
        );
        group.bench_with_input(
            BenchmarkId::new("cloog", kernel.name),
            &cl.code,
            |b, code| b.iter(|| polyir::passes::compile(code)),
        );
    }
    group.finish();
}

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_execution");
    group.sample_size(10);
    let cfg = polyir::ExecConfig {
        record_trace: false,
        ..Default::default()
    };
    for kernel in chill::recipes::all(32) {
        let stmts = statements_of(&kernel);
        let (cg, _) = generate(&stmts, Tool::codegenplus());
        let (cl, _) = generate(&stmts, Tool::cloog());
        group.bench_with_input(
            BenchmarkId::new("codegenplus", kernel.name),
            &(cg.code, kernel.params.clone()),
            |b, (code, params)| b.iter(|| polyir::execute_with(code, params, &cfg).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("cloog", kernel.name),
            &(cl.code, kernel.params.clone()),
            |b, (code, params)| b.iter(|| polyir::execute_with(code, params, &cfg).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_codegen, bench_compile, bench_execution);
criterion_main!(benches);
