//! Criterion benchmarks for the Presburger substrate (§2.2 operations):
//! satisfiability, Project, Gist, Hull on representative systems, plus the
//! implication-query streams the scanner issues while generating the gemv
//! and qr kernels of Table 1.

use bench_harness::statements_of;
use criterion::{criterion_group, criterion_main, Criterion};
use omega::Set;

fn bench_core_ops(c: &mut Criterion) {
    let tri = Set::parse("[n] -> { [i,j,k] : 0 <= i < n && i <= j < n && j <= k < n }").unwrap();
    let strided = Set::parse(
        "[n] -> { [i,j] : 1 <= i <= n && i <= j <= n && exists(a, b : i = 1 + 4a && j = i + 3b) }",
    )
    .unwrap();
    let union = Set::parse(
        "{ [i,j] : 1 <= i <= 100 && 1 <= j <= 100 && exists(a : j = i + 4a) } \
         | { [i,j] : 1 <= i <= 50 && 1 <= j <= 200 && exists(a : j = i + 6a) }",
    )
    .unwrap();

    c.bench_function("omega_is_empty_triangle", |b| b.iter(|| tri.is_empty()));
    c.bench_function("omega_project_strided", |b| {
        b.iter(|| strided.project_out(1, 1))
    });
    c.bench_function("omega_hull_union", |b| b.iter(|| union.hull()));
    let ctx = Set::parse("[n] -> { [i,j] : exists(a : i = 2a) }").unwrap();
    let a = Set::parse("[n] -> { [i,j] : exists(a : i = 6a) && 0 <= i <= n }").unwrap();
    c.bench_function("omega_gist_congruence", |b| b.iter(|| a.gist(&ctx)));
    c.bench_function("omega_subtract_stride", |b| {
        let whole = Set::parse("{ [i,j] : 0 <= i <= 99 }").unwrap();
        let evens = Set::parse("{ [i,j] : exists(a : i = 2a) }").unwrap();
        b.iter(|| whole.subtract(&evens))
    });
    c.bench_function("omega_parse_complex", |b| {
        b.iter(|| {
            Set::parse(
                "[n,m] -> { [i,j,k] : 0 <= i < n && 2i <= j < m + 3i && exists(a : k = 8a + 3) && k <= i + j }",
            )
            .unwrap()
        })
    });
}

/// The implication queries the scanner actually issues for a kernel:
/// per-level `gist(domain, projected context)` and pairwise subset tests
/// between statement domains — the two call sites the tiered pipeline and
/// the memo caches were built for.
fn implication_queries(kernel: &chill::Kernel) -> Vec<(Set, Set)> {
    let stmts = statements_of(kernel);
    let n_vars = stmts[0].domain.space().n_vars();
    let mut queries = Vec::new();
    for s in &stmts {
        for level in 1..=n_vars {
            let ctx = if level < n_vars {
                s.domain.project_out(level, n_vars - level)
            } else {
                s.domain.clone()
            };
            queries.push((s.domain.clone(), ctx));
        }
    }
    for a in &stmts {
        for b in &stmts {
            queries.push((a.domain.clone(), b.domain.clone()));
        }
    }
    queries
}

fn run_queries(queries: &[(Set, Set)]) -> usize {
    let mut answered = 0;
    for (a, ctx) in queries {
        let g = a.gist(ctx);
        answered += usize::from(!g.is_empty());
        if a.try_is_subset(ctx) == Some(true) {
            answered += 1;
        }
    }
    answered
}

fn bench_implication_traces(c: &mut Criterion) {
    for kernel in [chill::recipes::gemv(64), chill::recipes::qr(64)] {
        let queries = implication_queries(&kernel);
        // Cold: every iteration starts with empty memo caches, so the
        // full tier0 → tier1 → exact-solve pipeline runs.
        c.bench_function(&format!("implication_{}_cold", kernel.name), |b| {
            b.iter(|| {
                omega::reset_sat_cache();
                run_queries(&queries)
            })
        });
        // Warm: repeat queries hit the sharded caches, the scanner's
        // steady state once sibling subtrees start re-asking.
        c.bench_function(&format!("implication_{}_warm", kernel.name), |b| {
            omega::reset_sat_cache();
            run_queries(&queries);
            b.iter(|| run_queries(&queries))
        });
    }
}

criterion_group!(benches, bench_core_ops, bench_implication_traces);
criterion_main!(benches);
