//! Criterion benchmarks for the Presburger substrate (§2.2 operations):
//! satisfiability, Project, Gist, Hull on representative systems.

use criterion::{criterion_group, criterion_main, Criterion};
use omega::Set;

fn bench_core_ops(c: &mut Criterion) {
    let tri = Set::parse("[n] -> { [i,j,k] : 0 <= i < n && i <= j < n && j <= k < n }").unwrap();
    let strided =
        Set::parse("[n] -> { [i,j] : 1 <= i <= n && i <= j <= n && exists(a, b : i = 1 + 4a && j = i + 3b) }")
            .unwrap();
    let union = Set::parse(
        "{ [i,j] : 1 <= i <= 100 && 1 <= j <= 100 && exists(a : j = i + 4a) } \
         | { [i,j] : 1 <= i <= 50 && 1 <= j <= 200 && exists(a : j = i + 6a) }",
    )
    .unwrap();

    c.bench_function("omega_is_empty_triangle", |b| {
        b.iter(|| tri.is_empty())
    });
    c.bench_function("omega_project_strided", |b| {
        b.iter(|| strided.project_out(1, 1))
    });
    c.bench_function("omega_hull_union", |b| b.iter(|| union.hull()));
    let ctx = Set::parse("[n] -> { [i,j] : exists(a : i = 2a) }").unwrap();
    let a = Set::parse("[n] -> { [i,j] : exists(a : i = 6a) && 0 <= i <= n }").unwrap();
    c.bench_function("omega_gist_congruence", |b| b.iter(|| a.gist(&ctx)));
    c.bench_function("omega_subtract_stride", |b| {
        let whole = Set::parse("{ [i,j] : 0 <= i <= 99 }").unwrap();
        let evens = Set::parse("{ [i,j] : exists(a : i = 2a) }").unwrap();
        b.iter(|| whole.subtract(&evens))
    });
    c.bench_function("omega_parse_complex", |b| {
        b.iter(|| {
            Set::parse(
                "[n,m] -> { [i,j,k] : 0 <= i < n && 2i <= j < m + 3i && exists(a : k = 8a + 3) && k <= i + j }",
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_core_ops);
criterion_main!(benches);
