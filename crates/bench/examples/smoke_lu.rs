use cloog::Cloog;
use codegenplus::{pad_statements, CodeGen, Statement};
use std::time::Instant;
fn main() {
    let k = chill::recipes::lu(10);
    println!("lu statements: {}", k.nest.statements().len());
    let stmts: Vec<Statement> = k
        .nest
        .statements()
        .iter()
        .map(|s| Statement::new(s.name.clone(), s.domain.clone()).with_args(s.args.clone()))
        .collect();
    let stmts = pad_statements(&stmts, 0);
    let t0 = Instant::now();
    let cg = CodeGen::new()
        .statements(stmts.clone())
        .effort(1)
        .generate();
    println!(
        "cg+: {:?} in {:.2?}",
        cg.as_ref()
            .map(|g| polyir::lines_of_code(&g.code, &g.names)),
        t0.elapsed()
    );
    let t0 = Instant::now();
    let cl = Cloog::new().statements(stmts.clone()).generate();
    println!(
        "cloog: {:?} in {:.2?}",
        cl.as_ref()
            .map(|g| polyir::lines_of_code(&g.code, &g.names)),
        t0.elapsed()
    );
    if let (Ok(a), Ok(b)) = (cg, cl) {
        let ra = polyir::execute(&a.code, &k.params).unwrap();
        let rb = polyir::execute(&b.code, &k.params).unwrap();
        println!(
            "traces {} ({})",
            if ra.trace == rb.trace {
                "MATCH"
            } else {
                "DIFFER"
            },
            ra.trace.len()
        );
    }
}
