use bench_harness::{measure, statements_of, Tool};
fn main() {
    let k = chill::recipes::swim(24);
    for effort in [0usize, 1, 2, 3] {
        let r = measure(&k, Tool::CodeGenPlus { effort });
        println!(
            "cg+ d={effort}: {} lines, {} ifs-in-loops, cost {}",
            r.lines, r.metrics.ifs_inside_loops, r.dynamic_cost
        );
    }
    let r = measure(&k, Tool::cloog());
    println!(
        "cloog   : {} lines, {} ifs-in-loops, cost {}",
        r.lines, r.metrics.ifs_inside_loops, r.dynamic_cost
    );
    // print codes at effort 1 for inspection
    let stmts = statements_of(&k);
    let (g, _) = bench_harness::generate(&stmts, Tool::CodeGenPlus { effort: 1 });
    std::fs::write("/tmp/swim_cg.c", polyir::to_c(&g.code, &g.names)).unwrap();
    let (g, _) = bench_harness::generate(&stmts, Tool::cloog());
    std::fs::write("/tmp/swim_cloog.c", polyir::to_c(&g.code, &g.names)).unwrap();
    println!("codes written to /tmp/swim_cg.c /tmp/swim_cloog.c");
}
