//! Smoke: run all five kernels through both generators and compare traces.
use cloog::Cloog;
use codegenplus::{pad_statements, CodeGen, Statement};
use std::time::Instant;

fn main() {
    for k in chill::recipes::all(10) {
        let stmts: Vec<Statement> = k
            .nest
            .statements()
            .iter()
            .map(|s| Statement::new(s.name.clone(), s.domain.clone()).with_args(s.args.clone()))
            .collect();
        let stmts = pad_statements(&stmts, 0);
        let t0 = Instant::now();
        let cg = CodeGen::new()
            .statements(stmts.clone())
            .effort(1)
            .generate();
        let t_cg = t0.elapsed();
        let t0 = Instant::now();
        let cl = Cloog::new().statements(stmts.clone()).generate();
        let t_cl = t0.elapsed();
        match (cg, cl) {
            (Ok(a), Ok(b)) => {
                let ra = polyir::execute(&a.code, &k.params).unwrap();
                let rb = polyir::execute(&b.code, &k.params).unwrap();
                let la = polyir::lines_of_code(&a.code, &a.names);
                let lb = polyir::lines_of_code(&b.code, &b.names);
                let same = ra.trace == rb.trace;
                println!(
                    "{:6} cg+ {:>6} lines {:>8.2?} | cloog {:>6} lines {:>8.2?} | traces {} ({} instances)",
                    k.name, la, t_cg, lb, t_cl, if same { "MATCH" } else { "DIFFER" }, ra.trace.len()
                );
                if !same {
                    println!("cg+ code:\n{}", polyir::to_c(&a.code, &a.names));
                    println!("cloog code:\n{}", polyir::to_c(&b.code, &b.names));
                }
            }
            (a, b) => println!("{:6} cg+ {:?} cloog {:?}", k.name, a.err(), b.err()),
        }
    }
}
