//! # polyir — generated-code IR, interpreter, and metrics
//!
//! The output language shared by the `codegenplus` scanner and the
//! `cloog` baseline: C-like loop nests with affine bounds, `min`/`max`/
//! `floord`/`ceild` operators, guard conditions, and statement-instance
//! calls.
//!
//! Three consumers:
//!
//! * [`mod@print`] renders the C text the paper counts lines of;
//! * [`execute`] runs programs, recording the exact statement trace (the
//!   correctness oracle) and dynamic-cost counters (the performance model);
//! * [`passes::compile`] is a small optimizing pass pipeline whose wall
//!   clock stands in for the downstream gcc compile times of Table 1.
//!
//! # Examples
//!
//! ```
//! use polyir::{Expr, Stmt, execute};
//! // for (t1=0; t1<=3; t1++) s0(t1);
//! let prog = Stmt::Loop {
//!     var: 0,
//!     lower: Expr::Const(0),
//!     upper: Expr::Const(3),
//!     step: 1,
//!     body: Box::new(Stmt::Call { stmt: 0, args: vec![Expr::Var(0)] }),
//! };
//! let run = execute(&prog, &[])?;
//! assert_eq!(run.trace.len(), 4);
//! # Ok::<(), polyir::ExecError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod diff;
mod expr;
mod interp;
pub mod metrics;
pub mod passes;
pub mod print;
mod stmt;

pub use expr::{Cond, CondAtom, Expr};
pub use interp::{
    execute, execute_with, CostModel, Counters, ExecConfig, ExecError, Execution, TraceEntry,
};
pub use metrics::CodeMetrics;
pub use print::{lines_of_code, to_c, Names};
pub use stmt::Stmt;
