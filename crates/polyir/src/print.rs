//! C-like pretty printing of generated code. Lines of generated code are a
//! headline metric of the paper's Table 1, so the printer is deliberately
//! close to what CLooG/CodeGen+ emit.

use crate::expr::{Cond, CondAtom, Expr};
use crate::stmt::Stmt;

/// Naming environment for the printer.
#[derive(Clone, Debug, Default)]
pub struct Names {
    /// Parameter names by index (defaults to `n0`, `n1`, …).
    pub params: Vec<String>,
    /// Loop-variable names by slot (defaults to `t1`, `t2`, …).
    pub vars: Vec<String>,
    /// Statement names by id (defaults to `s0`, `s1`, …).
    pub stmts: Vec<String>,
}

impl Names {
    /// Parameter name for index `i`.
    pub fn param(&self, i: usize) -> String {
        self.params
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("n{i}"))
    }

    /// Loop-variable name for slot `i` (1-based `tK` by default, matching
    /// the paper's generated code).
    pub fn var(&self, i: usize) -> String {
        self.vars
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("t{}", i + 1))
    }

    /// Statement name for id `i`.
    pub fn stmt(&self, i: usize) -> String {
        self.stmts
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("s{i}"))
    }
}

/// Renders an expression.
pub fn expr_to_string(e: &Expr, names: &Names) -> String {
    prec_print(e, names, 0)
}

fn prec_print(e: &Expr, names: &Names, parent: u8) -> String {
    // precedence: 0 add/sub, 1 mul, 2 atom
    match e {
        Expr::Const(c) => {
            if *c < 0 && parent > 0 {
                format!("({c})")
            } else {
                format!("{c}")
            }
        }
        Expr::Param(i) => names.param(*i),
        Expr::Var(i) => names.var(*i),
        Expr::Add(a, b) => {
            let s = match b.as_ref() {
                Expr::Const(c) if *c < 0 => {
                    format!("{}-{}", prec_print(a, names, 0), -c)
                }
                Expr::Mul(k, e) if *k < 0 => {
                    format!(
                        "{}-{}",
                        prec_print(a, names, 0),
                        prec_print(&Expr::Mul(-k, e.clone()), names, 1)
                    )
                }
                _ => format!("{}+{}", prec_print(a, names, 0), prec_print(b, names, 0)),
            };
            if parent > 0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Sub(a, b) => {
            let s = format!("{}-{}", prec_print(a, names, 0), prec_print(b, names, 1));
            if parent > 0 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Mul(k, a) => {
            let s = format!("{}*{}", k, prec_print(a, names, 1));
            if parent > 1 {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Min(a, b) => format!(
            "min({},{})",
            prec_print(a, names, 0),
            prec_print(b, names, 0)
        ),
        Expr::Max(a, b) => format!(
            "max({},{})",
            prec_print(a, names, 0),
            prec_print(b, names, 0)
        ),
        Expr::FloorDiv(a, d) => format!("floord({},{})", prec_print(a, names, 0), d),
        Expr::CeilDiv(a, d) => format!("ceild({},{})", prec_print(a, names, 0), d),
        Expr::Mod(a, d) => format!("({})%{}", prec_print(a, names, 0), d),
    }
}

/// Renders a condition.
pub fn cond_to_string(c: &Cond, names: &Names) -> String {
    if c.is_always() {
        return "1".to_owned();
    }
    c.atoms()
        .iter()
        .map(|a| atom_to_string(a, names))
        .collect::<Vec<_>>()
        .join(" && ")
}

fn atom_to_string(a: &CondAtom, names: &Names) -> String {
    match a {
        CondAtom::GeqZero(e) => render_comparison(e, names),
        CondAtom::EqZero(e) => format!("{} == 0", prec_print(e, names, 0)),
        CondAtom::ModZero(e, m) => format!("{}%{} == 0", paren(e, names), m),
        CondAtom::ModLeq(e, m, k) => format!("{}%{} <= {}", paren(e, names), m, k),
    }
}

fn paren(e: &Expr, names: &Names) -> String {
    match e {
        Expr::Var(_) | Expr::Param(_) | Expr::Const(_) => prec_print(e, names, 0),
        _ => format!("({})", prec_print(e, names, 0)),
    }
}

/// Renders `e >= 0` in the friendlier `lhs >= rhs` / `lhs <= rhs` forms.
fn render_comparison(e: &Expr, names: &Names) -> String {
    match e {
        Expr::Sub(a, b) => format!("{} >= {}", prec_print(a, names, 0), prec_print(b, names, 0)),
        Expr::Add(a, b) => {
            if let Expr::Const(c) = b.as_ref() {
                // `-k·x + c >= 0` reads better as `k·x <= c`.
                if let Expr::Mul(k, x) = a.as_ref() {
                    if *k < 0 {
                        let lhs = if *k == -1 {
                            prec_print(x, names, 1)
                        } else {
                            format!("{}*{}", -k, prec_print(x, names, 1))
                        };
                        return format!("{lhs} <= {c}");
                    }
                }
                return format!("{} >= {}", prec_print(a, names, 0), -c);
            }
            format!("{} >= 0", prec_print(e, names, 0))
        }
        Expr::Mul(k, x) if *k < 0 => {
            let lhs = if *k == -1 {
                prec_print(x, names, 1)
            } else {
                format!("{}*{}", -k, prec_print(x, names, 1))
            };
            format!("{lhs} <= 0")
        }
        _ => format!("{} >= 0", prec_print(e, names, 0)),
    }
}

/// Pretty-prints a full program as C-like text.
pub fn to_c(stmt: &Stmt, names: &Names) -> String {
    let mut out = String::new();
    print_stmt(stmt, names, 0, &mut out);
    out
}

/// Number of non-empty lines of the C rendering — the paper's
/// "lines of generated code" metric.
pub fn lines_of_code(stmt: &Stmt, names: &Names) -> usize {
    to_c(stmt, names)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmt(s: &Stmt, names: &Names, depth: usize, out: &mut String) {
    match s {
        Stmt::Seq(items) => {
            for i in items {
                print_stmt(i, names, depth, out);
            }
        }
        Stmt::Loop {
            var,
            lower,
            upper,
            step,
            body,
        } => {
            indent(depth, out);
            let v = names.var(*var);
            let inc = if *step == 1 {
                format!("{v}++")
            } else {
                format!("{v}+={step}")
            };
            out.push_str(&format!(
                "for ({v}={}; {v}<={}; {inc}) {{\n",
                expr_to_string(lower, names),
                expr_to_string(upper, names)
            ));
            print_stmt(body, names, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::If { cond, then_, else_ } => {
            indent(depth, out);
            out.push_str(&format!("if ({}) {{\n", cond_to_string(cond, names)));
            print_stmt(then_, names, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
            if let Some(e) = else_ {
                indent(depth, out);
                out.push_str("else {\n");
                print_stmt(e, names, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
        Stmt::Assign { var, value, body } => {
            indent(depth, out);
            out.push_str(&format!(
                "{} = {};\n",
                names.var(*var),
                expr_to_string(value, names)
            ));
            print_stmt(body, names, depth, out);
        }
        Stmt::Call { stmt, args } => {
            indent(depth, out);
            let rendered: Vec<String> = args.iter().map(|a| expr_to_string(a, names)).collect();
            out.push_str(&format!("{}({});\n", names.stmt(*stmt), rendered.join(",")));
        }
        Stmt::Nop => {}
    }
}

/// Renders a complete, compilable C translation unit around the generated
/// loop nest: parameters become function arguments, loop variables are
/// declared, and statement instances become macro invocations the user
/// defines. This is the output a downstream user would paste into a real
/// build.
///
/// # Examples
///
/// ```
/// use polyir::{Expr, Stmt, Names, print::to_c_program};
/// let prog = Stmt::Loop {
///     var: 0,
///     lower: Expr::Const(0),
///     upper: Expr::sub(Expr::Param(0), Expr::Const(1)),
///     step: 1,
///     body: Box::new(Stmt::Call { stmt: 0, args: vec![Expr::Var(0)] }),
/// };
/// let names = Names { params: vec!["n".into()], vars: vec![], stmts: vec![] };
/// let c = to_c_program(&prog, &names, "scan");
/// assert!(c.contains("void scan(long n)"));
/// assert!(c.contains("#ifndef s0"));
/// ```
pub fn to_c_program(stmt: &Stmt, names: &Names, fn_name: &str) -> String {
    let mut out = String::new();
    out.push_str("#include <stdlib.h>\n\n");
    out.push_str("#define floord(a,b) ((long)floor((double)(a)/(double)(b)))\n");
    out.push_str("#define ceild(a,b) ((long)ceil((double)(a)/(double)(b)))\n");
    out.push_str("#define min(a,b) ((a)<(b)?(a):(b))\n");
    out.push_str("#define max(a,b) ((a)>(b)?(a):(b))\n");
    out.push_str("#include <math.h>\n\n");
    // Default statement macros so the file compiles out of the box.
    let mut stmts_used = Vec::new();
    collect_stmts(stmt, &mut stmts_used);
    for s in &stmts_used {
        let name = names.stmt(*s);
        out.push_str(&format!(
            "#ifndef {name}\n#define {name}(...) /* statement body */\n#endif\n"
        ));
    }
    out.push('\n');
    let params: Vec<String> = (0..count_params(stmt))
        .map(|p| format!("long {}", names.param(p)))
        .collect();
    out.push_str(&format!(
        "void {fn_name}({}) {{\n",
        if params.is_empty() {
            "void".to_owned()
        } else {
            params.join(", ")
        }
    ));
    let mut vars = Vec::new();
    collect_vars(stmt, &mut vars);
    vars.sort_unstable();
    if !vars.is_empty() {
        let decls: Vec<String> = vars.iter().map(|&v| names.var(v)).collect();
        out.push_str(&format!("  long {};\n", decls.join(", ")));
    }
    let mut body = String::new();
    print_stmt(stmt, names, 1, &mut body);
    out.push_str(&body);
    out.push_str("}\n");
    out
}

fn collect_stmts(s: &Stmt, out: &mut Vec<usize>) {
    match s {
        Stmt::Seq(items) => items.iter().for_each(|i| collect_stmts(i, out)),
        Stmt::Loop { body, .. } | Stmt::Assign { body, .. } => collect_stmts(body, out),
        Stmt::If { then_, else_, .. } => {
            collect_stmts(then_, out);
            if let Some(e) = else_ {
                collect_stmts(e, out);
            }
        }
        Stmt::Call { stmt, .. } => {
            if !out.contains(stmt) {
                out.push(*stmt);
            }
        }
        Stmt::Nop => {}
    }
}

fn collect_vars(s: &Stmt, out: &mut Vec<usize>) {
    let mut push = |v: usize| {
        if !out.contains(&v) {
            out.push(v);
        }
    };
    match s {
        Stmt::Seq(items) => items.iter().for_each(|i| collect_vars(i, out)),
        Stmt::Loop { var, body, .. } => {
            push(*var);
            collect_vars(body, out);
        }
        Stmt::Assign { var, body, .. } => {
            push(*var);
            collect_vars(body, out);
        }
        Stmt::If { then_, else_, .. } => {
            collect_vars(then_, out);
            if let Some(e) = else_ {
                collect_vars(e, out);
            }
        }
        Stmt::Call { .. } | Stmt::Nop => {}
    }
}

fn count_params(s: &Stmt) -> usize {
    fn expr_max(e: &Expr) -> usize {
        match e {
            Expr::Param(p) => p + 1,
            Expr::Const(_) | Expr::Var(_) => 0,
            Expr::Mul(_, a) | Expr::FloorDiv(a, _) | Expr::CeilDiv(a, _) | Expr::Mod(a, _) => {
                expr_max(a)
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Min(a, b) | Expr::Max(a, b) => {
                expr_max(a).max(expr_max(b))
            }
        }
    }
    fn cond_max(c: &Cond) -> usize {
        c.atoms()
            .iter()
            .map(|a| match a {
                CondAtom::GeqZero(e) | CondAtom::EqZero(e) => expr_max(e),
                CondAtom::ModZero(e, _) | CondAtom::ModLeq(e, _, _) => expr_max(e),
            })
            .max()
            .unwrap_or(0)
    }
    match s {
        Stmt::Seq(items) => items.iter().map(count_params).max().unwrap_or(0),
        Stmt::Loop {
            lower, upper, body, ..
        } => expr_max(lower).max(expr_max(upper)).max(count_params(body)),
        Stmt::If { cond, then_, else_ } => cond_max(cond)
            .max(count_params(then_))
            .max(else_.as_deref().map(count_params).unwrap_or(0)),
        Stmt::Assign { value, body, .. } => expr_max(value).max(count_params(body)),
        Stmt::Call { args, .. } => args.iter().map(expr_max).max().unwrap_or(0),
        Stmt::Nop => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_rendering() {
        let n = Names::default();
        let e = Expr::add(Expr::mul(2, Expr::Var(0)), Expr::Const(-3));
        assert_eq!(expr_to_string(&e, &n), "2*t1-3");
        let e = Expr::min2(Expr::Param(0), Expr::Var(1));
        assert_eq!(expr_to_string(&e, &n), "min(n0,t2)");
        let e = Expr::FloorDiv(Box::new(Expr::Param(0)), 4);
        assert_eq!(expr_to_string(&e, &n), "floord(n0,4)");
    }

    #[test]
    fn loop_rendering_matches_paper_style() {
        let n = Names {
            params: vec!["n".into()],
            vars: vec![],
            stmts: vec![],
        };
        let body = Stmt::Call {
            stmt: 0,
            args: vec![Expr::Var(0)],
        };
        let l = Stmt::Loop {
            var: 0,
            lower: Expr::Const(1),
            upper: Expr::Const(100),
            step: 1,
            body: Box::new(body),
        };
        let txt = to_c(&l, &n);
        assert!(txt.contains("for (t1=1; t1<=100; t1++) {"), "{txt}");
        assert!(txt.contains("s0(t1);"), "{txt}");
        assert_eq!(lines_of_code(&l, &n), 3);
    }

    #[test]
    fn mod_condition_rendering() {
        let n = Names::default();
        let c = Cond::atom(CondAtom::ModZero(Expr::Var(0), 4));
        assert_eq!(cond_to_string(&c, &n), "t1%4 == 0");
        let c = Cond::atom(CondAtom::ModZero(
            Expr::add(Expr::Var(0), Expr::Const(2)),
            4,
        ));
        assert_eq!(cond_to_string(&c, &n), "(t1+2)%4 == 0");
    }

    #[test]
    fn comparison_rendering() {
        let n = Names {
            params: vec!["n".into()],
            vars: vec![],
            stmts: vec![],
        };
        // n - 2 >= 0 renders as n >= 2
        let c = Cond::atom(CondAtom::GeqZero(Expr::add(
            Expr::Param(0),
            Expr::Const(-2),
        )));
        assert_eq!(cond_to_string(&c, &n), "n >= 2");
    }

    #[test]
    fn if_else_rendering() {
        let n = Names::default();
        let s = Stmt::If {
            cond: Cond::atom(CondAtom::ModZero(Expr::Var(0), 4)),
            then_: Box::new(Stmt::Call {
                stmt: 0,
                args: vec![Expr::Var(0)],
            }),
            else_: Some(Box::new(Stmt::Call {
                stmt: 1,
                args: vec![Expr::Var(0)],
            })),
        };
        let txt = to_c(&s, &n);
        assert!(txt.contains("else {"), "{txt}");
        assert_eq!(lines_of_code(&s, &n), 6);
    }

    #[test]
    fn assign_rendering() {
        let n = Names::default();
        let s = Stmt::Assign {
            var: 1,
            value: Expr::mul(4, Expr::Var(0)),
            body: Box::new(Stmt::Call {
                stmt: 0,
                args: vec![Expr::Var(0), Expr::Var(1)],
            }),
        };
        let txt = to_c(&s, &n);
        assert!(txt.contains("t2 = 4*t1;"), "{txt}");
        assert!(txt.contains("s0(t1,t2);"), "{txt}");
    }
}
