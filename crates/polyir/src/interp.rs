//! An interpreter for generated code that doubles as (a) the correctness
//! oracle — it records every statement instance executed, in order — and
//! (b) the performance model: it counts the dynamic control-flow operations
//! (branch tests, bound evaluations, mod/div operations) whose reduction is
//! the mechanism behind CodeGen+'s measured speedups (paper §4.2–4.3).

use crate::expr::{Cond, CondAtom, Expr};
use crate::stmt::Stmt;
use std::error::Error;
use std::fmt;

/// Dynamic operation counters accumulated during execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Loop iterations entered.
    pub loop_iterations: u64,
    /// Loop header bound evaluations (one per iteration test).
    pub bound_evaluations: u64,
    /// Condition atoms evaluated by `if` statements.
    pub branch_tests: u64,
    /// `if` outcomes that differed from the same site's previous outcome
    /// (a 1-bit branch predictor; loop-invariant guards predict perfectly,
    /// interleaved guards mispredict).
    pub branch_mispredictions: u64,
    /// Runtime `%` operations.
    pub mod_ops: u64,
    /// Runtime `floord`/`ceild` operations.
    pub div_ops: u64,
    /// Runtime `min`/`max` operations.
    pub minmax_ops: u64,
    /// Additions/subtractions/multiplications evaluated.
    pub arith_ops: u64,
    /// Degenerate-loop assignments executed.
    pub assigns: u64,
    /// Statement instances executed.
    pub stmt_execs: u64,
}

/// Weights turning [`Counters`] into a scalar cost — a simple in-order
/// machine model in which control flow in inner loops is what hurts.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Cost per executed statement instance (the loop body payload).
    pub stmt_cost: u64,
    /// Cost per branch-condition atom (predicted-taken base cost).
    pub branch_cost: u64,
    /// Extra cost of a mispredicted `if` outcome.
    pub mispredict_cost: u64,
    /// Cost per `%` operation.
    pub mod_cost: u64,
    /// Cost per integer division.
    pub div_cost: u64,
    /// Cost per `min`/`max`.
    pub minmax_cost: u64,
    /// Cost per add/sub/mul.
    pub arith_cost: u64,
    /// Cost per loop-iteration overhead (increment + compare).
    pub iter_cost: u64,
    /// Cost per assignment.
    pub assign_cost: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Branches are expensive relative to straight-line arithmetic
        // (mispredict exposure inside innermost loops); mod/div are the
        // "expensive arithmetic operations" the paper calls out.
        CostModel {
            stmt_cost: 8,
            branch_cost: 1,
            mispredict_cost: 14,
            mod_cost: 12,
            div_cost: 12,
            minmax_cost: 2,
            arith_cost: 1,
            iter_cost: 2,
            assign_cost: 1,
        }
    }
}

impl CostModel {
    /// Scalar dynamic cost of an execution.
    pub fn cost(&self, c: &Counters) -> u64 {
        self.stmt_cost * c.stmt_execs
            + self.branch_cost * c.branch_tests
            + self.mispredict_cost * c.branch_mispredictions
            + self.mod_cost * c.mod_ops
            + self.div_cost * c.div_ops
            + self.minmax_cost * c.minmax_ops
            + self.arith_cost * (c.arith_ops + c.bound_evaluations)
            + self.iter_cost * c.loop_iterations
            + self.assign_cost * c.assigns
    }
}

/// One executed statement instance: statement id and the values of its
/// coordinate arguments.
pub type TraceEntry = (usize, Vec<i64>);

/// Result of running a program.
#[derive(Clone, Debug)]
pub struct Execution {
    /// Statement instances in execution order.
    pub trace: Vec<TraceEntry>,
    /// Dynamic operation counts.
    pub counters: Counters,
}

/// Execution failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The configured iteration budget was exhausted (runaway loop).
    IterationLimit(u64),
    /// A loop variable slot was read before being assigned.
    UnboundVariable(usize),
    /// A parameter index was out of range.
    UnboundParam(usize),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::IterationLimit(n) => write!(f, "iteration limit of {n} exceeded"),
            ExecError::UnboundVariable(v) => write!(f, "loop variable slot {v} read before set"),
            ExecError::UnboundParam(p) => write!(f, "parameter {p} not supplied"),
        }
    }
}

impl Error for ExecError {}

/// Interpreter configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Hard cap on loop iterations (guards against runaway generated code).
    pub max_iterations: u64,
    /// Whether to record the statement trace (disable for pure benchmarking).
    pub record_trace: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_iterations: 200_000_000,
            record_trace: true,
        }
    }
}

/// Runs generated code under the given parameter binding.
///
/// # Errors
///
/// Returns [`ExecError`] on iteration-budget exhaustion or an unbound
/// variable/parameter (which indicate malformed generated code).
pub fn execute(stmt: &Stmt, params: &[i64]) -> Result<Execution, ExecError> {
    execute_with(stmt, params, &ExecConfig::default())
}

/// Runs generated code with an explicit [`ExecConfig`].
///
/// # Errors
///
/// Same conditions as [`execute`].
pub fn execute_with(stmt: &Stmt, params: &[i64], cfg: &ExecConfig) -> Result<Execution, ExecError> {
    let mut st = Interp {
        params,
        vars: Vec::new(),
        trace: Vec::new(),
        counters: Counters::default(),
        cfg: *cfg,
        predictor: std::collections::HashMap::new(),
    };
    st.run(stmt)?;
    Ok(Execution {
        trace: st.trace,
        counters: st.counters,
    })
}

struct Interp<'a> {
    params: &'a [i64],
    vars: Vec<Option<i64>>,
    trace: Vec<TraceEntry>,
    counters: Counters,
    cfg: ExecConfig,
    /// 1-bit predictor state per `if` site (keyed by node address).
    predictor: std::collections::HashMap<usize, bool>,
}

impl Interp<'_> {
    fn var_slot(&mut self, v: usize) -> &mut Option<i64> {
        if self.vars.len() <= v {
            self.vars.resize(v + 1, None);
        }
        &mut self.vars[v]
    }

    fn eval(&mut self, e: &Expr) -> Result<i64, ExecError> {
        Ok(match e {
            Expr::Const(c) => *c,
            Expr::Param(i) => *self.params.get(*i).ok_or(ExecError::UnboundParam(*i))?,
            Expr::Var(v) => self
                .vars
                .get(*v)
                .copied()
                .flatten()
                .ok_or(ExecError::UnboundVariable(*v))?,
            Expr::Add(a, b) => {
                self.counters.arith_ops += 1;
                self.eval(a)? + self.eval(b)?
            }
            Expr::Sub(a, b) => {
                self.counters.arith_ops += 1;
                self.eval(a)? - self.eval(b)?
            }
            Expr::Mul(k, a) => {
                self.counters.arith_ops += 1;
                k * self.eval(a)?
            }
            Expr::Min(a, b) => {
                self.counters.minmax_ops += 1;
                self.eval(a)?.min(self.eval(b)?)
            }
            Expr::Max(a, b) => {
                self.counters.minmax_ops += 1;
                self.eval(a)?.max(self.eval(b)?)
            }
            Expr::FloorDiv(a, d) => {
                self.counters.div_ops += 1;
                floor_div(self.eval(a)?, *d)
            }
            Expr::CeilDiv(a, d) => {
                self.counters.div_ops += 1;
                ceil_div(self.eval(a)?, *d)
            }
            Expr::Mod(a, d) => {
                self.counters.mod_ops += 1;
                mod_floor(self.eval(a)?, *d)
            }
        })
    }

    fn test(&mut self, c: &Cond) -> Result<bool, ExecError> {
        for a in c.atoms() {
            self.counters.branch_tests += 1;
            let ok = match a {
                CondAtom::GeqZero(e) => self.eval(e)? >= 0,
                CondAtom::EqZero(e) => self.eval(e)? == 0,
                CondAtom::ModZero(e, m) => {
                    self.counters.mod_ops += 1;
                    mod_floor(self.eval(e)?, *m) == 0
                }
                CondAtom::ModLeq(e, m, k) => {
                    self.counters.mod_ops += 1;
                    mod_floor(self.eval(e)?, *m) <= *k
                }
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn run(&mut self, s: &Stmt) -> Result<(), ExecError> {
        match s {
            Stmt::Seq(items) => {
                for i in items {
                    self.run(i)?;
                }
            }
            Stmt::Loop {
                var,
                lower,
                upper,
                step,
                body,
            } => {
                let lo = self.eval(lower)?;
                let saved = *self.var_slot(*var);
                let mut v = lo;
                loop {
                    self.counters.bound_evaluations += 1;
                    let hi = self.eval(upper)?;
                    if v > hi {
                        break;
                    }
                    self.counters.loop_iterations += 1;
                    if self.counters.loop_iterations > self.cfg.max_iterations {
                        return Err(ExecError::IterationLimit(self.cfg.max_iterations));
                    }
                    *self.var_slot(*var) = Some(v);
                    self.run(body)?;
                    v += step;
                }
                *self.var_slot(*var) = saved;
            }
            Stmt::If { cond, then_, else_ } => {
                let taken = self.test(cond)?;
                let site = s as *const Stmt as usize;
                let prev = self.predictor.insert(site, taken);
                if prev.is_some_and(|p| p != taken) {
                    self.counters.branch_mispredictions += 1;
                }
                if taken {
                    self.run(then_)?;
                } else if let Some(e) = else_ {
                    self.run(e)?;
                }
            }
            Stmt::Assign { var, value, body } => {
                let v = self.eval(value)?;
                self.counters.assigns += 1;
                let saved = *self.var_slot(*var);
                *self.var_slot(*var) = Some(v);
                self.run(body)?;
                *self.var_slot(*var) = saved;
            }
            Stmt::Call { stmt, args } => {
                self.counters.stmt_execs += 1;
                if self.cfg.record_trace {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval(a)?);
                    }
                    self.trace.push((*stmt, vals));
                } else {
                    for a in args {
                        let _ = self.eval(a)?;
                    }
                }
            }
            Stmt::Nop => {}
        }
        Ok(())
    }
}

fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

fn mod_floor(a: i64, m: i64) -> i64 {
    a - floor_div(a, m) * m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(k: usize, args: Vec<Expr>) -> Stmt {
        Stmt::Call { stmt: k, args }
    }

    #[test]
    fn triangle_trace_in_lex_order() {
        // for (i=0..2) for (j=0..i) s0(i,j)
        let s = Stmt::Loop {
            var: 0,
            lower: Expr::Const(0),
            upper: Expr::Const(2),
            step: 1,
            body: Box::new(Stmt::Loop {
                var: 1,
                lower: Expr::Const(0),
                upper: Expr::Var(0),
                step: 1,
                body: Box::new(call(0, vec![Expr::Var(0), Expr::Var(1)])),
            }),
        };
        let e = execute(&s, &[]).unwrap();
        let expect: Vec<TraceEntry> = vec![
            (0, vec![0, 0]),
            (0, vec![1, 0]),
            (0, vec![1, 1]),
            (0, vec![2, 0]),
            (0, vec![2, 1]),
            (0, vec![2, 2]),
        ];
        assert_eq!(e.trace, expect);
        assert_eq!(e.counters.stmt_execs, 6);
        assert_eq!(e.counters.loop_iterations, 3 + 6);
    }

    #[test]
    fn strided_loop() {
        // for (i=1; i<=13; i+=4) s0(i)
        let s = Stmt::Loop {
            var: 0,
            lower: Expr::Const(1),
            upper: Expr::Const(13),
            step: 4,
            body: Box::new(call(0, vec![Expr::Var(0)])),
        };
        let e = execute(&s, &[]).unwrap();
        let xs: Vec<i64> = e.trace.iter().map(|(_, a)| a[0]).collect();
        assert_eq!(xs, vec![1, 5, 9, 13]);
    }

    #[test]
    fn guard_counts_branches() {
        // for (i=0..9) if (i % 2 == 0) s0(i)
        let s = Stmt::Loop {
            var: 0,
            lower: Expr::Const(0),
            upper: Expr::Const(9),
            step: 1,
            body: Box::new(Stmt::If {
                cond: Cond::atom(CondAtom::ModZero(Expr::Var(0), 2)),
                then_: Box::new(call(0, vec![Expr::Var(0)])),
                else_: None,
            }),
        };
        let e = execute(&s, &[]).unwrap();
        assert_eq!(e.counters.stmt_execs, 5);
        assert_eq!(e.counters.branch_tests, 10);
        assert_eq!(e.counters.mod_ops, 10);
    }

    #[test]
    fn if_else_dispatch() {
        let s = Stmt::Loop {
            var: 0,
            lower: Expr::Const(0),
            upper: Expr::Const(3),
            step: 1,
            body: Box::new(Stmt::If {
                cond: Cond::atom(CondAtom::ModZero(Expr::Var(0), 2)),
                then_: Box::new(call(0, vec![Expr::Var(0)])),
                else_: Some(Box::new(call(1, vec![Expr::Var(0)]))),
            }),
        };
        let e = execute(&s, &[]).unwrap();
        let ids: Vec<usize> = e.trace.iter().map(|(k, _)| *k).collect();
        assert_eq!(ids, vec![0, 1, 0, 1]);
    }

    #[test]
    fn params_and_min_max_bounds() {
        // for (i=max(2, n-2); i <= min(8, n); i++) s0(i)   with n = 6 → 4..=6
        let s = Stmt::Loop {
            var: 0,
            lower: Expr::max2(Expr::Const(2), Expr::sub(Expr::Param(0), Expr::Const(2))),
            upper: Expr::min2(Expr::Const(8), Expr::Param(0)),
            step: 1,
            body: Box::new(call(0, vec![Expr::Var(0)])),
        };
        let e = execute(&s, &[6]).unwrap();
        let xs: Vec<i64> = e.trace.iter().map(|(_, a)| a[0]).collect();
        assert_eq!(xs, vec![4, 5, 6]);
        assert!(e.counters.minmax_ops > 0);
    }

    #[test]
    fn assign_scopes_value() {
        // t2 = 3; s0(t2); then t2 unbound again outside (checked via error)
        let s = Stmt::Assign {
            var: 1,
            value: Expr::Const(3),
            body: Box::new(call(0, vec![Expr::Var(1)])),
        };
        let e = execute(&s, &[]).unwrap();
        assert_eq!(e.trace, vec![(0, vec![3])]);
        assert_eq!(e.counters.assigns, 1);
        let after = Stmt::seq(vec![s, call(1, vec![Expr::Var(1)])]);
        assert_eq!(
            execute(&after, &[]).unwrap_err(),
            ExecError::UnboundVariable(1)
        );
    }

    #[test]
    fn iteration_limit_guards() {
        let s = Stmt::Loop {
            var: 0,
            lower: Expr::Const(0),
            upper: Expr::Const(1_000_000),
            step: 1,
            body: Box::new(Stmt::Nop),
        };
        let cfg = ExecConfig {
            max_iterations: 10,
            record_trace: true,
        };
        assert_eq!(
            execute_with(&s, &[], &cfg).unwrap_err(),
            ExecError::IterationLimit(10)
        );
    }

    #[test]
    fn empty_loop_runs_zero_iterations() {
        let s = Stmt::Loop {
            var: 0,
            lower: Expr::Const(5),
            upper: Expr::Const(4),
            step: 1,
            body: Box::new(call(0, vec![])),
        };
        let e = execute(&s, &[]).unwrap();
        assert!(e.trace.is_empty());
        assert_eq!(e.counters.loop_iterations, 0);
        assert_eq!(e.counters.bound_evaluations, 1);
    }

    #[test]
    fn cost_model_orders_control_flow() {
        let cm = CostModel::default();
        let plain = Counters {
            stmt_execs: 100,
            loop_iterations: 100,
            ..Counters::default()
        };
        let guarded = Counters {
            branch_tests: 100,
            mod_ops: 100,
            ..plain
        };
        assert!(cm.cost(&guarded) > cm.cost(&plain));
    }

    #[test]
    fn floor_ceil_mod_expr() {
        let s = Stmt::Assign {
            var: 0,
            value: Expr::FloorDiv(Box::new(Expr::Param(0)), 4),
            body: Box::new(Stmt::Call {
                stmt: 0,
                args: vec![
                    Expr::Var(0),
                    Expr::CeilDiv(Box::new(Expr::Param(0)), 4),
                    Expr::Mod(Box::new(Expr::Param(0)), 4),
                ],
            }),
        };
        let e = execute(&s, &[-7]).unwrap();
        assert_eq!(e.trace, vec![(0, vec![-2, -1, 1])]);
    }
}
