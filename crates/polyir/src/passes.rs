//! A small optimizing "compiler" over the generated-code IR. Its wall-clock
//! time is the repository's stand-in for the gcc compile times of the
//! paper's Table 1: each pass does work proportional to (and, for the CSE
//! pass, quadratic in) the size of the generated code, so relative compile
//! times track generated-code complexity the same way gcc's do.

use crate::expr::{Cond, CondAtom, Expr};
use crate::stmt::Stmt;

/// Statistics and the optimized program produced by [`compile`].
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// The program after all passes.
    pub optimized: Stmt,
    /// IR nodes visited across all passes (a deterministic work measure).
    pub node_visits: usize,
    /// Pseudo-instructions emitted by the final lowering pass.
    pub pseudo_instructions: usize,
}

/// Runs the pass pipeline: constant folding → guard simplification →
/// loop-invariant code motion / unswitching → dead code elimination →
/// common-subexpression scan → lowering.
pub fn compile(program: &Stmt) -> CompileReport {
    // One timed span per pass when a trace collector is installed (see
    // `omega::trace`); dormant probes otherwise.
    fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
        let _span = if omega::trace::active() {
            omega::trace::span_begin(name)
        } else {
            omega::trace::SpanGuard::inert()
        };
        f()
    }
    let _pipeline = omega::span!(pass_pipeline);
    let mut visits = 0usize;
    let folded = timed("pass_fold", || fold_stmt(program, &mut visits));
    let simplified = timed("pass_simplify_guards", || {
        simplify_guards(&folded, &mut visits)
    });
    let mut next_slot = max_var_slot(&simplified).map_or(0, |v| v + 1);
    let hoisted = timed("pass_licm", || {
        licm(&simplified, &mut next_slot, &mut visits)
    });
    let cleaned = timed("pass_dce", || dce(&hoisted, &mut visits));
    let cse_work = timed("pass_cse", || cse_scan(&cleaned, &mut visits));
    // fold CSE work in deterministically
    let pseudo = timed("pass_lower", || lower(&cleaned, &mut visits)) + cse_work / 97;
    CompileReport {
        optimized: cleaned,
        node_visits: visits,
        pseudo_instructions: pseudo,
    }
}

/// Highest loop-variable slot used anywhere.
fn max_var_slot(s: &Stmt) -> Option<usize> {
    fn expr_max(e: &Expr) -> Option<usize> {
        match e {
            Expr::Var(v) => Some(*v),
            Expr::Const(_) | Expr::Param(_) => None,
            Expr::Mul(_, a) | Expr::FloorDiv(a, _) | Expr::CeilDiv(a, _) | Expr::Mod(a, _) => {
                expr_max(a)
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Min(a, b) | Expr::Max(a, b) => {
                expr_max(a).max(expr_max(b))
            }
        }
    }
    fn cond_max(c: &Cond) -> Option<usize> {
        c.atoms()
            .iter()
            .filter_map(|a| match a {
                CondAtom::GeqZero(e) | CondAtom::EqZero(e) => expr_max(e),
                CondAtom::ModZero(e, _) | CondAtom::ModLeq(e, _, _) => expr_max(e),
            })
            .max()
    }
    match s {
        Stmt::Seq(items) => items.iter().filter_map(max_var_slot).max(),
        Stmt::Loop {
            var,
            lower,
            upper,
            body,
            ..
        } => [
            Some(*var),
            expr_max(lower),
            expr_max(upper),
            max_var_slot(body),
        ]
        .into_iter()
        .flatten()
        .max(),
        Stmt::If { cond, then_, else_ } => [
            cond_max(cond),
            max_var_slot(then_),
            else_.as_deref().and_then(max_var_slot),
        ]
        .into_iter()
        .flatten()
        .max(),
        Stmt::Assign { var, value, body } => [Some(*var), expr_max(value), max_var_slot(body)]
            .into_iter()
            .flatten()
            .max(),
        Stmt::Call { args, .. } => args.iter().filter_map(expr_max).max(),
        Stmt::Nop => None,
    }
}

/// Renames loop-variable slot `from` to `to` in a subtree (used when
/// hoisting an assignment whose slot is reassigned by a sibling).
fn rename_var(s: &Stmt, from: usize, to: usize) -> Stmt {
    fn re(e: &Expr, from: usize, to: usize) -> Expr {
        match e {
            Expr::Var(v) if *v == from => Expr::Var(to),
            Expr::Const(_) | Expr::Param(_) | Expr::Var(_) => e.clone(),
            Expr::Mul(k, a) => Expr::Mul(*k, Box::new(re(a, from, to))),
            Expr::FloorDiv(a, d) => Expr::FloorDiv(Box::new(re(a, from, to)), *d),
            Expr::CeilDiv(a, d) => Expr::CeilDiv(Box::new(re(a, from, to)), *d),
            Expr::Mod(a, d) => Expr::Mod(Box::new(re(a, from, to)), *d),
            Expr::Add(a, b) => Expr::Add(Box::new(re(a, from, to)), Box::new(re(b, from, to))),
            Expr::Sub(a, b) => Expr::Sub(Box::new(re(a, from, to)), Box::new(re(b, from, to))),
            Expr::Min(a, b) => Expr::Min(Box::new(re(a, from, to)), Box::new(re(b, from, to))),
            Expr::Max(a, b) => Expr::Max(Box::new(re(a, from, to)), Box::new(re(b, from, to))),
        }
    }
    fn rc(c: &Cond, from: usize, to: usize) -> Cond {
        Cond::from_atoms(
            c.atoms()
                .iter()
                .map(|a| match a {
                    CondAtom::GeqZero(e) => CondAtom::GeqZero(re(e, from, to)),
                    CondAtom::EqZero(e) => CondAtom::EqZero(re(e, from, to)),
                    CondAtom::ModZero(e, m) => CondAtom::ModZero(re(e, from, to), *m),
                    CondAtom::ModLeq(e, m, k) => CondAtom::ModLeq(re(e, from, to), *m, *k),
                })
                .collect(),
        )
    }
    match s {
        Stmt::Seq(items) => Stmt::Seq(items.iter().map(|i| rename_var(i, from, to)).collect()),
        Stmt::Loop {
            var,
            lower,
            upper,
            step,
            body,
        } => {
            if *var == from {
                // The slot is rebound here: the binding shadows `from`.
                Stmt::Loop {
                    var: *var,
                    lower: re(lower, from, to),
                    upper: re(upper, from, to),
                    step: *step,
                    body: body.clone(),
                }
            } else {
                Stmt::Loop {
                    var: *var,
                    lower: re(lower, from, to),
                    upper: re(upper, from, to),
                    step: *step,
                    body: Box::new(rename_var(body, from, to)),
                }
            }
        }
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: rc(cond, from, to),
            then_: Box::new(rename_var(then_, from, to)),
            else_: else_.as_ref().map(|e| Box::new(rename_var(e, from, to))),
        },
        Stmt::Assign { var, value, body } => {
            if *var == from {
                Stmt::Assign {
                    var: *var,
                    value: re(value, from, to),
                    body: body.clone(),
                }
            } else {
                Stmt::Assign {
                    var: *var,
                    value: re(value, from, to),
                    body: Box::new(rename_var(body, from, to)),
                }
            }
        }
        Stmt::Call { stmt, args } => Stmt::Call {
            stmt: *stmt,
            args: args.iter().map(|a| re(a, from, to)).collect(),
        },
        Stmt::Nop => Stmt::Nop,
    }
}

/// Unswitches the loop over the first top-level `if` in `body` whose
/// condition does not depend on `var`. Returns the specialized `if` with a
/// loop copy in each branch, or `None` if nothing to unswitch. `fuel`
/// bounds the nesting of unswitched conditions (code growth 2^fuel).
fn try_unswitch(
    var: usize,
    lower: &Expr,
    upper: &Expr,
    step: i64,
    body: &Stmt,
    fuel: usize,
) -> Option<Stmt> {
    if fuel == 0 || body.size() > 512 {
        return None;
    }
    let items: Vec<Stmt> = match body {
        Stmt::Seq(v) => v.clone(),
        other => vec![other.clone()],
    };
    // Variables bound inside the body (assignments, inner loops) must not
    // appear in a hoisted condition: they are undefined outside the loop.
    let mut bound = vec![var];
    for i in &items {
        collect_bound_vars(i, &mut bound);
    }
    let pos = items.iter().position(|i| {
        matches!(i, Stmt::If { cond, .. } if cond.atoms().iter().all(|a| {
            let e = match a {
                CondAtom::GeqZero(e) | CondAtom::EqZero(e) => e,
                CondAtom::ModZero(e, _) | CondAtom::ModLeq(e, _, _) => e,
            };
            bound.iter().all(|&b| !e.uses_var(b))
        }))
    })?;
    let Stmt::If { cond, then_, else_ } = items[pos].clone() else {
        unreachable!()
    };
    let mk_loop = |replacement: Stmt| {
        let mut v = items.clone();
        v[pos] = replacement;
        let inner = Stmt::seq(v);
        let looped = Stmt::Loop {
            var,
            lower: lower.clone(),
            upper: upper.clone(),
            step,
            body: Box::new(inner.clone()),
        };
        // Recursively unswitch remaining invariant ifs in this version.
        match try_unswitch(var, lower, upper, step, &inner, fuel - 1) {
            Some(u) => u,
            None => looped,
        }
    };
    let then_loop = mk_loop((*then_).clone());
    let else_loop = mk_loop(else_.map(|e| *e).unwrap_or(Stmt::Nop));
    Some(Stmt::If {
        cond,
        then_: Box::new(then_loop),
        else_: match else_loop {
            Stmt::Nop => None,
            other => Some(Box::new(other)),
        },
    })
}

/// Records every variable slot bound by assignments or loops in a subtree.
fn collect_bound_vars(s: &Stmt, out: &mut Vec<usize>) {
    match s {
        Stmt::Seq(items) => items.iter().for_each(|i| collect_bound_vars(i, out)),
        Stmt::Loop { var, body, .. } => {
            if !out.contains(var) {
                out.push(*var);
            }
            collect_bound_vars(body, out);
        }
        Stmt::If { then_, else_, .. } => {
            collect_bound_vars(then_, out);
            if let Some(e) = else_ {
                collect_bound_vars(e, out);
            }
        }
        Stmt::Assign { var, body, .. } => {
            if !out.contains(var) {
                out.push(*var);
            }
            collect_bound_vars(body, out);
        }
        Stmt::Call { .. } | Stmt::Nop => {}
    }
}

/// Loop-invariant code motion and unswitching, as gcc -O3 would perform:
/// assignments whose value does not depend on the loop variable are hoisted
/// above the loop (renamed to a fresh slot), and a loop whose whole body is
/// an invariant `if` is unswitched.
fn licm(s: &Stmt, next_slot: &mut usize, visits: &mut usize) -> Stmt {
    *visits += 1;
    match s {
        Stmt::Seq(items) => Stmt::seq(items.iter().map(|i| licm(i, next_slot, visits)).collect()),
        Stmt::Loop {
            var,
            lower,
            upper,
            step,
            body,
        } => {
            let body = licm(body, next_slot, visits);
            // Unswitch: a top-level if with a loop-invariant condition is
            // specialized outside the loop (both versions re-optimized),
            // bounded to keep code growth in check — as gcc -O3 does.
            if let Some(unswitched) = try_unswitch(*var, lower, upper, *step, &body, 4) {
                return licm(&unswitched, next_slot, visits);
            }
            // Hoist invariant assignments out of the loop body: scan the
            // top-level items; each invariant `Assign` is renamed to a
            // fresh slot and moved above the loop.
            let mut wrappers: Vec<(usize, Expr)> = Vec::new();
            let items: Vec<Stmt> = match body {
                Stmt::Seq(v) => v,
                other => vec![other],
            };
            let mut new_items = Vec::with_capacity(items.len());
            for item in items {
                if let Stmt::Assign {
                    var: x,
                    value,
                    body: inner,
                } = &item
                {
                    if !value.uses_var(*var) && x != var {
                        let fresh = *next_slot;
                        *next_slot += 1;
                        wrappers.push((fresh, value.clone()));
                        new_items.push(rename_var(inner, *x, fresh));
                        continue;
                    }
                }
                new_items.push(item);
            }
            let new_body = Stmt::seq(new_items);
            // Hoisting may have exposed invariant ifs: retry unswitching.
            let mut out = match try_unswitch(*var, lower, upper, *step, &new_body, 4) {
                Some(u) => licm(&u, next_slot, visits),
                None => Stmt::Loop {
                    var: *var,
                    lower: lower.clone(),
                    upper: upper.clone(),
                    step: *step,
                    body: Box::new(new_body),
                },
            };
            for (slot, value) in wrappers.into_iter().rev() {
                out = Stmt::Assign {
                    var: slot,
                    value,
                    body: Box::new(out),
                };
            }
            out
        }
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: cond.clone(),
            then_: Box::new(licm(then_, next_slot, visits)),
            else_: else_.as_ref().map(|e| Box::new(licm(e, next_slot, visits))),
        },
        Stmt::Assign { var, value, body } => Stmt::Assign {
            var: *var,
            value: value.clone(),
            body: Box::new(licm(body, next_slot, visits)),
        },
        other => other.clone(),
    }
}

/// Constant folding over expressions.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Const(_) | Expr::Param(_) | Expr::Var(_) => e.clone(),
        Expr::Add(a, b) => Expr::add(fold_expr(a), fold_expr(b)),
        Expr::Sub(a, b) => Expr::sub(fold_expr(a), fold_expr(b)),
        Expr::Mul(k, a) => Expr::mul(*k, fold_expr(a)),
        Expr::Min(a, b) => match (fold_expr(a), fold_expr(b)) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.min(y)),
            (x, y) => Expr::min2(x, y),
        },
        Expr::Max(a, b) => match (fold_expr(a), fold_expr(b)) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.max(y)),
            (x, y) => Expr::max2(x, y),
        },
        Expr::FloorDiv(a, d) => match fold_expr(a) {
            Expr::Const(x) => Expr::Const(floor_div(x, *d)),
            x => Expr::FloorDiv(Box::new(x), *d),
        },
        Expr::CeilDiv(a, d) => match fold_expr(a) {
            Expr::Const(x) => Expr::Const(ceil_div(x, *d)),
            x => Expr::CeilDiv(Box::new(x), *d),
        },
        Expr::Mod(a, d) => match fold_expr(a) {
            Expr::Const(x) => Expr::Const(x - floor_div(x, *d) * *d),
            x => Expr::Mod(Box::new(x), *d),
        },
    }
}

fn fold_stmt(s: &Stmt, visits: &mut usize) -> Stmt {
    *visits += 1;
    match s {
        Stmt::Seq(items) => Stmt::seq(items.iter().map(|i| fold_stmt(i, visits)).collect()),
        Stmt::Loop {
            var,
            lower,
            upper,
            step,
            body,
        } => Stmt::Loop {
            var: *var,
            lower: fold_expr(lower),
            upper: fold_expr(upper),
            step: *step,
            body: Box::new(fold_stmt(body, visits)),
        },
        Stmt::If { cond, then_, else_ } => Stmt::If {
            cond: Cond::from_atoms(
                cond.atoms()
                    .iter()
                    .map(|a| match a {
                        CondAtom::GeqZero(e) => CondAtom::GeqZero(fold_expr(e)),
                        CondAtom::EqZero(e) => CondAtom::EqZero(fold_expr(e)),
                        CondAtom::ModZero(e, m) => CondAtom::ModZero(fold_expr(e), *m),
                        CondAtom::ModLeq(e, m, k) => CondAtom::ModLeq(fold_expr(e), *m, *k),
                    })
                    .collect(),
            ),
            then_: Box::new(fold_stmt(then_, visits)),
            else_: else_.as_ref().map(|e| Box::new(fold_stmt(e, visits))),
        },
        Stmt::Assign { var, value, body } => Stmt::Assign {
            var: *var,
            value: fold_expr(value),
            body: Box::new(fold_stmt(body, visits)),
        },
        Stmt::Call { stmt, args } => Stmt::Call {
            stmt: *stmt,
            args: args.iter().map(fold_expr).collect(),
        },
        Stmt::Nop => Stmt::Nop,
    }
}

/// Drops condition atoms that are statically true and whole branches that
/// are statically false (after folding, atoms over constants resolve).
fn simplify_guards(s: &Stmt, visits: &mut usize) -> Stmt {
    *visits += 1;
    match s {
        Stmt::Seq(items) => Stmt::seq(items.iter().map(|i| simplify_guards(i, visits)).collect()),
        Stmt::Loop {
            var,
            lower,
            upper,
            step,
            body,
        } => Stmt::Loop {
            var: *var,
            lower: lower.clone(),
            upper: upper.clone(),
            step: *step,
            body: Box::new(simplify_guards(body, visits)),
        },
        Stmt::If { cond, then_, else_ } => {
            let mut atoms = Vec::new();
            let mut statically_false = false;
            for a in cond.atoms() {
                match a {
                    CondAtom::GeqZero(Expr::Const(c)) => {
                        if *c < 0 {
                            statically_false = true;
                        }
                    }
                    CondAtom::EqZero(Expr::Const(c)) => {
                        if *c != 0 {
                            statically_false = true;
                        }
                    }
                    CondAtom::ModZero(Expr::Const(c), m) => {
                        if c.rem_euclid(*m) != 0 {
                            statically_false = true;
                        }
                    }
                    CondAtom::ModLeq(Expr::Const(c), m, k) => {
                        if c.rem_euclid(*m) > *k {
                            statically_false = true;
                        }
                    }
                    other => atoms.push(other.clone()),
                }
            }
            let t = simplify_guards(then_, visits);
            let e = else_.as_ref().map(|e| simplify_guards(e, visits));
            if statically_false {
                return e.unwrap_or(Stmt::Nop);
            }
            if atoms.is_empty() {
                return t;
            }
            Stmt::If {
                cond: Cond::from_atoms(atoms),
                then_: Box::new(t),
                else_: e.map(Box::new),
            }
        }
        Stmt::Assign { var, value, body } => Stmt::Assign {
            var: *var,
            value: value.clone(),
            body: Box::new(simplify_guards(body, visits)),
        },
        other => other.clone(),
    }
}

/// Removes empty loops / branches.
fn dce(s: &Stmt, visits: &mut usize) -> Stmt {
    *visits += 1;
    match s {
        Stmt::Seq(items) => Stmt::seq(items.iter().map(|i| dce(i, visits)).collect()),
        Stmt::Loop {
            var,
            lower,
            upper,
            step,
            body,
        } => {
            let b = dce(body, visits);
            if matches!(b, Stmt::Nop) {
                Stmt::Nop
            } else {
                Stmt::Loop {
                    var: *var,
                    lower: lower.clone(),
                    upper: upper.clone(),
                    step: *step,
                    body: Box::new(b),
                }
            }
        }
        Stmt::If { cond, then_, else_ } => {
            let t = dce(then_, visits);
            let e = else_.as_ref().map(|e| dce(e, visits));
            let e = match e {
                Some(Stmt::Nop) => None,
                other => other,
            };
            if matches!(t, Stmt::Nop) && e.is_none() {
                Stmt::Nop
            } else {
                Stmt::If {
                    cond: cond.clone(),
                    then_: Box::new(t),
                    else_: e.map(Box::new),
                }
            }
        }
        Stmt::Assign { var, value, body } => {
            let b = dce(body, visits);
            if matches!(b, Stmt::Nop) {
                Stmt::Nop
            } else {
                Stmt::Assign {
                    var: *var,
                    value: value.clone(),
                    body: Box::new(b),
                }
            }
        }
        other => other.clone(),
    }
}

/// Counts pairwise-identical subexpressions within each loop body — a
/// deliberately quadratic analysis standing in for the superlinear parts of
/// a real optimizer. Returns a work measure.
fn cse_scan(s: &Stmt, visits: &mut usize) -> usize {
    fn collect<'a>(s: &'a Stmt, exprs: &mut Vec<&'a Expr>) {
        match s {
            Stmt::Seq(items) => items.iter().for_each(|i| collect(i, exprs)),
            Stmt::Loop {
                lower, upper, body, ..
            } => {
                exprs.push(lower);
                exprs.push(upper);
                collect(body, exprs);
            }
            Stmt::If { cond, then_, else_ } => {
                for a in cond.atoms() {
                    match a {
                        CondAtom::GeqZero(e)
                        | CondAtom::EqZero(e)
                        | CondAtom::ModZero(e, _)
                        | CondAtom::ModLeq(e, _, _) => exprs.push(e),
                    }
                }
                collect(then_, exprs);
                if let Some(e) = else_ {
                    collect(e, exprs);
                }
            }
            Stmt::Assign { value, body, .. } => {
                exprs.push(value);
                collect(body, exprs);
            }
            Stmt::Call { args, .. } => exprs.extend(args.iter()),
            Stmt::Nop => {}
        }
    }
    let mut exprs = Vec::new();
    collect(s, &mut exprs);
    let mut work = 0usize;
    for i in 0..exprs.len() {
        for j in (i + 1)..exprs.len() {
            *visits += 1;
            if exprs[i] == exprs[j] {
                work += exprs[i].size();
            }
        }
    }
    work
}

/// Final lowering: pseudo-instruction count.
fn lower(s: &Stmt, visits: &mut usize) -> usize {
    *visits += 1;
    match s {
        Stmt::Seq(items) => items.iter().map(|i| lower(i, visits)).sum(),
        Stmt::Loop {
            lower: lo,
            upper,
            body,
            ..
        } => 3 + lo.size() + upper.size() + lower(body, visits),
        Stmt::If { cond, then_, else_ } => {
            1 + cond.size()
                + lower(then_, visits)
                + else_.as_ref().map(|e| lower(e, visits)).unwrap_or(0)
        }
        Stmt::Assign { value, body, .. } => 1 + value.size() + lower(body, visits),
        Stmt::Call { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
        Stmt::Nop => 0,
    }
}

fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folding_collapses_constants() {
        let e = Expr::Add(
            Box::new(Expr::Mul(2, Box::new(Expr::Const(3)))),
            Box::new(Expr::Const(4)),
        );
        assert_eq!(fold_expr(&e), Expr::Const(10));
        let e = Expr::Min(Box::new(Expr::Const(3)), Box::new(Expr::Const(7)));
        assert_eq!(fold_expr(&e), Expr::Const(3));
        let e = Expr::Mod(Box::new(Expr::Const(-1)), 4);
        assert_eq!(fold_expr(&e), Expr::Const(3));
    }

    #[test]
    fn statically_false_guard_removed() {
        let s = Stmt::If {
            cond: Cond::atom(CondAtom::GeqZero(Expr::Const(-1))),
            then_: Box::new(Stmt::Call {
                stmt: 0,
                args: vec![],
            }),
            else_: Some(Box::new(Stmt::Call {
                stmt: 1,
                args: vec![],
            })),
        };
        let r = compile(&s);
        assert_eq!(
            r.optimized,
            Stmt::Call {
                stmt: 1,
                args: vec![]
            }
        );
    }

    #[test]
    fn statically_true_guard_dropped() {
        let s = Stmt::If {
            cond: Cond::atom(CondAtom::ModZero(Expr::Const(8), 4)),
            then_: Box::new(Stmt::Call {
                stmt: 0,
                args: vec![],
            }),
            else_: None,
        };
        let r = compile(&s);
        assert_eq!(
            r.optimized,
            Stmt::Call {
                stmt: 0,
                args: vec![]
            }
        );
    }

    #[test]
    fn empty_loop_eliminated() {
        let s = Stmt::Loop {
            var: 0,
            lower: Expr::Const(0),
            upper: Expr::Const(9),
            step: 1,
            body: Box::new(Stmt::Nop),
        };
        let r = compile(&s);
        assert_eq!(r.optimized, Stmt::Nop);
    }

    #[test]
    fn work_scales_with_size() {
        fn nest(depth: usize) -> Stmt {
            if depth == 0 {
                return Stmt::Call {
                    stmt: 0,
                    args: vec![Expr::Var(0), Expr::Var(1)],
                };
            }
            Stmt::Loop {
                var: depth - 1,
                lower: Expr::Const(0),
                upper: Expr::Param(0),
                step: 1,
                body: Box::new(nest(depth - 1)),
            }
        }
        let small = compile(&Stmt::seq(vec![nest(2)]));
        let big = compile(&Stmt::seq((0..20).map(|_| nest(2)).collect()));
        assert!(big.node_visits > small.node_visits * 10);
        assert!(big.pseudo_instructions > small.pseudo_instructions * 10);
    }
}
