//! The statement-level IR for generated loop nests.

use crate::expr::{Cond, Expr};

/// A node of generated code. The tree mirrors the C a polyhedra scanner
/// would emit: counted `for` loops with constant step, `if` guards,
/// degenerate-loop assignments, and statement-instance calls.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Stmt {
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// `for (var = lower; var <= upper; var += step) body`
    Loop {
        /// Loop-variable slot written by this loop.
        var: usize,
        /// Lower bound (may contain `max`, `ceil`, remainder adjustments).
        lower: Expr,
        /// Upper bound (may contain `min`, `floor`).
        upper: Expr,
        /// Constant positive step.
        step: i64,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `if (cond) then_ [else else_]`
    If {
        /// Guard condition (a conjunction).
        cond: Cond,
        /// Taken branch.
        then_: Box<Stmt>,
        /// Optional else branch.
        else_: Option<Box<Stmt>>,
    },
    /// Degenerate loop: `var = value;` scoping `body`.
    Assign {
        /// Variable slot assigned.
        var: usize,
        /// Assigned value.
        value: Expr,
        /// Code executed under the binding.
        body: Box<Stmt>,
    },
    /// A statement instance `sK(args...)`; `args` are the iteration-space
    /// coordinates in the transformed (scanned) space.
    Call {
        /// Statement identifier (index into the input statement list).
        stmt: usize,
        /// Coordinate expressions, one per scanned dimension.
        args: Vec<Expr>,
    },
    /// No code.
    Nop,
}

impl Stmt {
    /// Wraps a list of statements, flattening nested sequences and dropping
    /// `Nop`s.
    pub fn seq(items: Vec<Stmt>) -> Stmt {
        let mut out = Vec::new();
        for s in items {
            match s {
                Stmt::Nop => {}
                Stmt::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Stmt::Nop,
            1 => out.into_iter().next().unwrap(),
            _ => Stmt::Seq(out),
        }
    }

    /// Wraps in an `if` unless the condition is trivially true.
    pub fn guarded(cond: Cond, body: Stmt) -> Stmt {
        if cond.is_always() {
            body
        } else if matches!(body, Stmt::Nop) {
            Stmt::Nop
        } else {
            Stmt::If {
                cond,
                then_: Box::new(body),
                else_: None,
            }
        }
    }

    /// Number of IR nodes (statements + expressions), the size metric used
    /// by the compile-time stand-in.
    pub fn size(&self) -> usize {
        match self {
            Stmt::Seq(items) => 1 + items.iter().map(Stmt::size).sum::<usize>(),
            Stmt::Loop {
                lower, upper, body, ..
            } => 1 + lower.size() + upper.size() + body.size(),
            Stmt::If { cond, then_, else_ } => {
                1 + cond.size() + then_.size() + else_.as_ref().map(|e| e.size()).unwrap_or(0)
            }
            Stmt::Assign { value, body, .. } => 1 + value.size() + body.size(),
            Stmt::Call { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Stmt::Nop => 1,
        }
    }

    /// Maximum loop-nest depth.
    pub fn loop_depth(&self) -> usize {
        match self {
            Stmt::Seq(items) => items.iter().map(Stmt::loop_depth).max().unwrap_or(0),
            Stmt::Loop { body, .. } => 1 + body.loop_depth(),
            Stmt::If { then_, else_, .. } => then_
                .loop_depth()
                .max(else_.as_ref().map(|e| e.loop_depth()).unwrap_or(0)),
            Stmt::Assign { body, .. } => body.loop_depth(),
            Stmt::Call { .. } | Stmt::Nop => 0,
        }
    }

    /// Total number of `if` statements.
    pub fn count_ifs(&self) -> usize {
        match self {
            Stmt::Seq(items) => items.iter().map(Stmt::count_ifs).sum(),
            Stmt::Loop { body, .. } | Stmt::Assign { body, .. } => body.count_ifs(),
            Stmt::If { then_, else_, .. } => {
                1 + then_.count_ifs() + else_.as_ref().map(|e| e.count_ifs()).unwrap_or(0)
            }
            Stmt::Call { .. } | Stmt::Nop => 0,
        }
    }

    /// Total number of loops.
    pub fn count_loops(&self) -> usize {
        match self {
            Stmt::Seq(items) => items.iter().map(Stmt::count_loops).sum(),
            Stmt::Loop { body, .. } => 1 + body.count_loops(),
            Stmt::Assign { body, .. } => body.count_loops(),
            Stmt::If { then_, else_, .. } => {
                then_.count_loops() + else_.as_ref().map(|e| e.count_loops()).unwrap_or(0)
            }
            Stmt::Call { .. } | Stmt::Nop => 0,
        }
    }

    /// Number of `if` statements enclosed within at least one loop —
    /// the "control overhead inside loops" the paper's algorithms minimize.
    pub fn ifs_inside_loops(&self) -> usize {
        fn walk(s: &Stmt, inside: bool) -> usize {
            match s {
                Stmt::Seq(items) => items.iter().map(|i| walk(i, inside)).sum(),
                Stmt::Loop { body, .. } => walk(body, true),
                Stmt::Assign { body, .. } => walk(body, inside),
                Stmt::If { then_, else_, .. } => {
                    (inside as usize)
                        + walk(then_, inside)
                        + else_.as_ref().map(|e| walk(e, inside)).unwrap_or(0)
                }
                Stmt::Call { .. } | Stmt::Nop => 0,
            }
        }
        walk(self, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CondAtom;

    fn call(k: usize) -> Stmt {
        Stmt::Call {
            stmt: k,
            args: vec![Expr::Var(0)],
        }
    }

    fn simple_loop(body: Stmt) -> Stmt {
        Stmt::Loop {
            var: 0,
            lower: Expr::Const(0),
            upper: Expr::Const(9),
            step: 1,
            body: Box::new(body),
        }
    }

    #[test]
    fn seq_flattens() {
        let s = Stmt::seq(vec![Stmt::Nop, Stmt::Seq(vec![call(0), call(1)]), call(2)]);
        match s {
            Stmt::Seq(items) => assert_eq!(items.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
        assert_eq!(Stmt::seq(vec![]), Stmt::Nop);
        assert_eq!(Stmt::seq(vec![call(0)]), call(0));
    }

    #[test]
    fn guarded_skips_trivial() {
        let g = Stmt::guarded(Cond::always(), call(0));
        assert_eq!(g, call(0));
        let g = Stmt::guarded(Cond::atom(CondAtom::GeqZero(Expr::Var(0))), Stmt::Nop);
        assert_eq!(g, Stmt::Nop);
    }

    #[test]
    fn metrics() {
        let inner = Stmt::guarded(Cond::atom(CondAtom::GeqZero(Expr::Param(0))), call(0));
        let nest = simple_loop(simple_loop(inner));
        assert_eq!(nest.loop_depth(), 2);
        assert_eq!(nest.count_loops(), 2);
        assert_eq!(nest.count_ifs(), 1);
        assert_eq!(nest.ifs_inside_loops(), 1);
        // An if outside any loop does not count as loop overhead.
        let outside = Stmt::guarded(
            Cond::atom(CondAtom::GeqZero(Expr::Param(0))),
            simple_loop(call(0)),
        );
        assert_eq!(outside.count_ifs(), 1);
        assert_eq!(outside.ifs_inside_loops(), 0);
    }
}
