//! Aggregate static metrics over generated code — the columns of the
//! paper's Table 1 besides raw timing.

use crate::print::{lines_of_code, Names};
use crate::stmt::Stmt;

/// Static metrics of a generated program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeMetrics {
    /// Non-empty lines of the C rendering.
    pub lines: usize,
    /// Number of `if` statements.
    pub ifs: usize,
    /// Number of `if` statements nested inside at least one loop.
    pub ifs_inside_loops: usize,
    /// Number of loops.
    pub loops: usize,
    /// Maximum loop-nest depth.
    pub depth: usize,
    /// IR node count.
    pub size: usize,
}

impl CodeMetrics {
    /// Computes all metrics for a program.
    pub fn of(stmt: &Stmt, names: &Names) -> CodeMetrics {
        CodeMetrics {
            lines: lines_of_code(stmt, names),
            ifs: stmt.count_ifs(),
            ifs_inside_loops: stmt.ifs_inside_loops(),
            loops: stmt.count_loops(),
            depth: stmt.loop_depth(),
            size: stmt.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Cond, CondAtom, Expr};

    #[test]
    fn metrics_of_guarded_nest() {
        let body = Stmt::If {
            cond: Cond::atom(CondAtom::GeqZero(Expr::Param(0))),
            then_: Box::new(Stmt::Call {
                stmt: 0,
                args: vec![Expr::Var(0)],
            }),
            else_: None,
        };
        let s = Stmt::Loop {
            var: 0,
            lower: Expr::Const(0),
            upper: Expr::Const(9),
            step: 1,
            body: Box::new(body),
        };
        let m = CodeMetrics::of(&s, &Names::default());
        assert_eq!(m.loops, 1);
        assert_eq!(m.ifs, 1);
        assert_eq!(m.ifs_inside_loops, 1);
        assert_eq!(m.depth, 1);
        assert_eq!(m.lines, 5);
        assert!(m.size > 4);
    }
}
