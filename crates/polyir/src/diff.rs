//! Execution-trace diffing for the differential-testing harness: locate
//! the first point where two statement traces diverge and report it with
//! enough surrounding context to triage a fuzzer finding at a glance.

use crate::interp::TraceEntry;
use std::fmt;

/// The first divergence between two execution traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first differing position.
    pub index: usize,
    /// Entry at `index` in the left trace (`None`: left ended early).
    pub left: Option<TraceEntry>,
    /// Entry at `index` in the right trace (`None`: right ended early).
    pub right: Option<TraceEntry>,
    /// Up to the last three entries both traces agree on before `index`.
    pub common_tail: Vec<TraceEntry>,
    /// Total lengths of the two traces.
    pub lens: (usize, usize),
}

/// Compares two execution traces; `None` when they are identical.
pub fn first_divergence(left: &[TraceEntry], right: &[TraceEntry]) -> Option<Divergence> {
    let n = left.len().min(right.len());
    let index = (0..n)
        .find(|&i| left[i] != right[i])
        .unwrap_or(n)
        .min(left.len().max(right.len()));
    if index == left.len() && index == right.len() {
        return None;
    }
    let tail_from = index.saturating_sub(3);
    Some(Divergence {
        index,
        left: left.get(index).cloned(),
        right: right.get(index).cloned(),
        common_tail: left[tail_from..index].to_vec(),
        lens: (left.len(), right.len()),
    })
}

fn entry(e: &Option<TraceEntry>) -> String {
    match e {
        Some((k, args)) => format!("s{k}{args:?}"),
        None => "<end of trace>".to_owned(),
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "first divergence at instance {} (trace lengths {} vs {}): {} vs {}",
            self.index,
            self.lens.0,
            self.lens.1,
            entry(&self.left),
            entry(&self.right),
        )?;
        if !self.common_tail.is_empty() {
            write!(f, "; after ")?;
            for (i, (k, args)) in self.common_tail.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "s{k}{args:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(entries: &[(usize, &[i64])]) -> Vec<TraceEntry> {
        entries.iter().map(|(k, a)| (*k, a.to_vec())).collect()
    }

    #[test]
    fn identical_traces_have_no_divergence() {
        let a = t(&[(0, &[1]), (1, &[2])]);
        assert_eq!(first_divergence(&a, &a.clone()), None);
        assert_eq!(first_divergence(&[], &[]), None);
    }

    #[test]
    fn mid_trace_divergence_reports_context() {
        let a = t(&[(0, &[0]), (0, &[1]), (0, &[2]), (0, &[3]), (0, &[4])]);
        let b = t(&[(0, &[0]), (0, &[1]), (0, &[2]), (0, &[3]), (0, &[9])]);
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.index, 4);
        assert_eq!(d.left, Some((0, vec![4])));
        assert_eq!(d.right, Some((0, vec![9])));
        assert_eq!(d.common_tail, t(&[(0, &[1]), (0, &[2]), (0, &[3])]));
        let msg = d.to_string();
        assert!(msg.contains("instance 4") && msg.contains("s0[9]"), "{msg}");
    }

    #[test]
    fn length_mismatch_diverges_at_shorter_end() {
        let a = t(&[(0, &[0]), (0, &[1])]);
        let b = t(&[(0, &[0])]);
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.index, 1);
        assert_eq!(d.left, Some((0, vec![1])));
        assert_eq!(d.right, None);
        assert!(d.to_string().contains("<end of trace>"));
    }
}
