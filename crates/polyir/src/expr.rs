//! Runtime expressions appearing in generated loop code: affine terms plus
//! the `min`/`max`/`floor`/`ceil`/`mod` operators that polyhedra scanning
//! introduces.

use std::fmt;

/// An integer expression in generated code. Variables refer to loop-variable
/// slots (`t1`, `t2`, …) by index; parameters are symbolic inputs (`n`, …).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Symbolic parameter by index.
    Param(usize),
    /// Loop variable slot by index.
    Var(usize),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Scaling by an integer constant.
    Mul(i64, Box<Expr>),
    /// Minimum of two expressions (from multiple upper bounds).
    Min(Box<Expr>, Box<Expr>),
    /// Maximum of two expressions (from multiple lower bounds).
    Max(Box<Expr>, Box<Expr>),
    /// `⌊e / d⌋` with a positive constant divisor.
    FloorDiv(Box<Expr>, i64),
    /// `⌈e / d⌉` with a positive constant divisor.
    CeilDiv(Box<Expr>, i64),
    /// Mathematical remainder `e mod d` in `[0, d)`, positive divisor.
    Mod(Box<Expr>, i64),
}

// `add`/`sub` are associated constructors, not `self` methods; they cannot
// shadow the operator traits.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Builder: `a + b` with light constant folding.
    pub fn add(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (Expr::Const(0), e) | (e, Expr::Const(0)) => e,
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x + y),
            (a, b) => Expr::Add(Box::new(a), Box::new(b)),
        }
    }

    /// Builder: `a - b` with light constant folding.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (e, Expr::Const(0)) => e,
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x - y),
            (a, b) => Expr::Sub(Box::new(a), Box::new(b)),
        }
    }

    /// Builder: `k * e` with light constant folding.
    pub fn mul(k: i64, e: Expr) -> Expr {
        match (k, e) {
            (0, _) => Expr::Const(0),
            (1, e) => e,
            (k, Expr::Const(c)) => Expr::Const(k * c),
            (k, e) => Expr::Mul(k, Box::new(e)),
        }
    }

    /// Builder: binary `max`, folding equal operands and constants.
    pub fn max2(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.max(y)),
            (a, b) if a == b => a,
            (a, b) => Expr::Max(Box::new(a), Box::new(b)),
        }
    }

    /// Builder: binary `min`, folding equal operands and constants.
    pub fn min2(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.min(y)),
            (a, b) if a == b => a,
            (a, b) => Expr::Min(Box::new(a), Box::new(b)),
        }
    }

    /// `max` over a non-empty list.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn max_of(items: Vec<Expr>) -> Expr {
        let mut it = items.into_iter();
        let first = it.next().expect("max_of requires at least one expression");
        it.fold(first, Expr::max2)
    }

    /// `min` over a non-empty list.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn min_of(items: Vec<Expr>) -> Expr {
        let mut it = items.into_iter();
        let first = it.next().expect("min_of requires at least one expression");
        it.fold(first, Expr::min2)
    }

    /// The number of AST nodes (used by the compile-time stand-in metric).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Param(_) | Expr::Var(_) => 1,
            Expr::Mul(_, e) | Expr::FloorDiv(e, _) | Expr::CeilDiv(e, _) | Expr::Mod(e, _) => {
                1 + e.size()
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Min(a, b) | Expr::Max(a, b) => {
                1 + a.size() + b.size()
            }
        }
    }

    /// True if the expression mentions loop variable `v`.
    pub fn uses_var(&self, v: usize) -> bool {
        match self {
            Expr::Var(x) => *x == v,
            Expr::Const(_) | Expr::Param(_) => false,
            Expr::Mul(_, e) | Expr::FloorDiv(e, _) | Expr::CeilDiv(e, _) | Expr::Mod(e, _) => {
                e.uses_var(v)
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Min(a, b) | Expr::Max(a, b) => {
                a.uses_var(v) || b.uses_var(v)
            }
        }
    }
}

/// Atomic runtime condition.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum CondAtom {
    /// `e >= 0`.
    GeqZero(Expr),
    /// `e == 0`.
    EqZero(Expr),
    /// `e mod m == 0` (mathematical mod, `m > 0`).
    ModZero(Expr, i64),
    /// `e mod m <= k` (mathematical mod, `m > 0`) — from range-mod guards
    /// such as `∃α: 0 ≤ e − mα ≤ k`.
    ModLeq(Expr, i64, i64),
}

impl CondAtom {
    /// AST size of the atom.
    pub fn size(&self) -> usize {
        match self {
            CondAtom::GeqZero(e) | CondAtom::EqZero(e) => 1 + e.size(),
            CondAtom::ModZero(e, _) => 2 + e.size(),
            CondAtom::ModLeq(e, _, _) => 3 + e.size(),
        }
    }
}

/// A conjunction of atomic conditions guarding generated code. An empty
/// conjunction is `true`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Cond {
    atoms: Vec<CondAtom>,
}

impl Cond {
    /// The always-true condition.
    pub fn always() -> Cond {
        Cond::default()
    }

    /// A condition with a single atom.
    pub fn atom(a: CondAtom) -> Cond {
        Cond { atoms: vec![a] }
    }

    /// Builds from a list of atoms.
    pub fn from_atoms(atoms: Vec<CondAtom>) -> Cond {
        Cond { atoms }
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[CondAtom] {
        &self.atoms
    }

    /// True if the condition is trivially true.
    pub fn is_always(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Conjunction of two conditions.
    pub fn and(mut self, other: Cond) -> Cond {
        for a in other.atoms {
            if !self.atoms.contains(&a) {
                self.atoms.push(a);
            }
        }
        self
    }

    /// Total AST size.
    pub fn size(&self) -> usize {
        self.atoms.iter().map(CondAtom::size).sum()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            crate::print::expr_to_string(self, &crate::print::Names::default())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fold_constants() {
        assert_eq!(Expr::add(Expr::Const(2), Expr::Const(3)), Expr::Const(5));
        assert_eq!(Expr::add(Expr::Var(0), Expr::Const(0)), Expr::Var(0));
        assert_eq!(Expr::mul(1, Expr::Var(2)), Expr::Var(2));
        assert_eq!(Expr::mul(0, Expr::Param(0)), Expr::Const(0));
        assert_eq!(Expr::sub(Expr::Var(1), Expr::Const(0)), Expr::Var(1));
        assert_eq!(Expr::max2(Expr::Var(0), Expr::Var(0)), Expr::Var(0));
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::add(Expr::mul(2, Expr::Var(0)), Expr::Param(0));
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn uses_var_traverses() {
        let e = Expr::min2(Expr::Var(3), Expr::add(Expr::Param(0), Expr::Const(1)));
        assert!(e.uses_var(3));
        assert!(!e.uses_var(0));
    }

    #[test]
    fn cond_and_dedups() {
        let a = Cond::atom(CondAtom::GeqZero(Expr::Var(0)));
        let b = a.clone().and(a.clone());
        assert_eq!(b.atoms().len(), 1);
        assert!(Cond::always().is_always());
        assert!(!b.is_always());
    }

    #[test]
    fn max_of_folds() {
        let e = Expr::max_of(vec![Expr::Var(0), Expr::Var(1), Expr::Var(0)]);
        assert_eq!(e.size(), 5); // max(max(v0, v1), v0)
    }
}
