//! Property-based tests for the pass pipeline: for randomized programs,
//! `passes::compile` must preserve the exact execution trace, and the
//! printer must render every construct it contains.

use polyir::{execute, passes, Cond, CondAtom, Expr, Names, Stmt};
use proptest::prelude::*;

/// Deterministically builds a random—but well-formed—program from a byte
/// recipe: loop variables are always bound before use, bounds are small
/// constants or parameters, and conditions draw from every atom kind.
fn build_program(bytes: &[u8]) -> Stmt {
    let mut cursor = 0usize;
    let mut next = || {
        let b = bytes.get(cursor).copied().unwrap_or(0);
        cursor += 1;
        b
    };
    fn expr(scope: &[usize], b: u8, c: u8) -> Expr {
        match b % 4 {
            0 => Expr::Const((c % 7) as i64 - 3),
            1 => Expr::Param((c % 2) as usize),
            2 if !scope.is_empty() => Expr::Var(scope[c as usize % scope.len()]),
            _ => Expr::add(
                Expr::mul((c % 3) as i64 + 1, Expr::Param(0)),
                Expr::Const((c % 5) as i64),
            ),
        }
    }
    fn atom(scope: &[usize], b: u8, c: u8, d: u8) -> CondAtom {
        let e = expr(scope, c, d);
        match b % 4 {
            0 => CondAtom::GeqZero(e),
            1 => CondAtom::EqZero(e),
            2 => CondAtom::ModZero(e, (b % 3) as i64 + 2),
            _ => CondAtom::ModLeq(e, (b % 3) as i64 + 2, (c % 2) as i64),
        }
    }
    fn stmt(next: &mut dyn FnMut() -> u8, scope: &mut Vec<usize>, depth: usize) -> Stmt {
        let tag = next();
        if depth >= 3 {
            return Stmt::Call {
                stmt: (tag % 3) as usize,
                args: scope.iter().map(|&v| Expr::Var(v)).collect(),
            };
        }
        match tag % 5 {
            0 => {
                let var = scope.len();
                scope.push(var);
                let lo = (next() % 4) as i64 - 1;
                let hi = lo + (next() % 5) as i64;
                let body = stmt(next, scope, depth + 1);
                scope.pop();
                Stmt::Loop {
                    var,
                    lower: Expr::Const(lo),
                    upper: Expr::min2(Expr::Const(hi), Expr::add(Expr::Param(0), Expr::Const(3))),
                    step: (next() % 2) as i64 + 1,
                    body: Box::new(body),
                }
            }
            1 => {
                let a = atom(scope, next(), next(), next());
                let then_ = stmt(next, scope, depth + 1);
                let else_ = if next().is_multiple_of(2) {
                    Some(Box::new(stmt(next, scope, depth + 1)))
                } else {
                    None
                };
                Stmt::If {
                    cond: Cond::atom(a),
                    then_: Box::new(then_),
                    else_,
                }
            }
            2 => {
                let var = scope.len();
                scope.push(var);
                let b = next();
                let c = next();
                let value = expr(&scope[..scope.len() - 1], b, c);
                let body = stmt(next, scope, depth + 1);
                scope.pop();
                Stmt::Assign {
                    var,
                    value,
                    body: Box::new(body),
                }
            }
            3 => {
                let a = stmt(next, scope, depth + 1);
                let b = stmt(next, scope, depth + 1);
                Stmt::seq(vec![a, b])
            }
            _ => Stmt::Call {
                stmt: (tag % 3) as usize,
                args: scope.iter().map(|&v| Expr::Var(v)).collect(),
            },
        }
    }
    let mut scope = Vec::new();
    stmt(&mut next, &mut scope, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compile_preserves_trace(bytes in prop::collection::vec(any::<u8>(), 8..64), n in 0i64..6, m in -2i64..4) {
        let program = build_program(&bytes);
        let before = execute(&program, &[n, m]).unwrap();
        let report = passes::compile(&program);
        let after = execute(&report.optimized, &[n, m]).unwrap();
        prop_assert_eq!(
            &before.trace, &after.trace,
            "optimization changed semantics\nbefore:\n{}\nafter:\n{}",
            polyir::to_c(&program, &Names::default()),
            polyir::to_c(&report.optimized, &Names::default())
        );
    }

    #[test]
    fn printer_renders_everything(bytes in prop::collection::vec(any::<u8>(), 8..64)) {
        let program = build_program(&bytes);
        let names = Names::default();
        let text = polyir::to_c(&program, &names);
        // Every call that exists in the tree appears in the rendering.
        let calls = count_calls(&program);
        if calls > 0 {
            prop_assert!(text.contains('('), "{text}");
        }
        let loc = polyir::lines_of_code(&program, &names);
        prop_assert!(loc <= text.lines().count());
    }

    #[test]
    fn metrics_are_consistent(bytes in prop::collection::vec(any::<u8>(), 8..64)) {
        let program = build_program(&bytes);
        let names = Names::default();
        let m = polyir::CodeMetrics::of(&program, &names);
        prop_assert!(m.ifs_inside_loops <= m.ifs);
        prop_assert!(m.depth <= m.loops);
        prop_assert_eq!(m.size, program.size());
    }
}

fn count_calls(s: &Stmt) -> usize {
    match s {
        Stmt::Seq(items) => items.iter().map(count_calls).sum(),
        Stmt::Loop { body, .. } | Stmt::Assign { body, .. } => count_calls(body),
        Stmt::If { then_, else_, .. } => {
            count_calls(then_) + else_.as_ref().map(|e| count_calls(e)).unwrap_or(0)
        }
        Stmt::Call { .. } => 1,
        Stmt::Nop => 0,
    }
}
