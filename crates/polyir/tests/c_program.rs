//! Tests for the complete-C-program emitter.

use polyir::print::to_c_program;
use polyir::{Cond, CondAtom, Expr, Names, Stmt};

fn sample() -> (Stmt, Names) {
    let prog = Stmt::Loop {
        var: 0,
        lower: Expr::Const(0),
        upper: Expr::sub(Expr::Param(0), Expr::Const(1)),
        step: 1,
        body: Box::new(Stmt::If {
            cond: Cond::atom(CondAtom::ModZero(Expr::Var(0), 2)),
            then_: Box::new(Stmt::Loop {
                var: 1,
                lower: Expr::Const(0),
                upper: Expr::Var(0),
                step: 1,
                body: Box::new(Stmt::Call {
                    stmt: 0,
                    args: vec![Expr::Var(0), Expr::Var(1)],
                }),
            }),
            else_: Some(Box::new(Stmt::Call {
                stmt: 1,
                args: vec![Expr::Var(0)],
            })),
        }),
    };
    let names = Names {
        params: vec!["n".into()],
        vars: vec![],
        stmts: vec!["update".into(), "boundary".into()],
    };
    (prog, names)
}

#[test]
fn program_has_function_signature_and_decls() {
    let (prog, names) = sample();
    let c = to_c_program(&prog, &names, "scan");
    assert!(c.contains("void scan(long n)"), "{c}");
    assert!(c.contains("long t1, t2;"), "{c}");
    assert!(c.contains("#define update"), "{c}");
    assert!(c.contains("#define boundary"), "{c}");
    assert!(c.contains("for (t1=0; t1<=n-1; t1++)"), "{c}");
}

#[test]
fn program_without_params_uses_void() {
    let prog = Stmt::Call {
        stmt: 0,
        args: vec![],
    };
    let c = to_c_program(&prog, &Names::default(), "f");
    assert!(c.contains("void f(void)"), "{c}");
}

#[test]
fn macros_cover_all_statements() {
    let (prog, names) = sample();
    let c = to_c_program(&prog, &names, "scan");
    // Each statement appears both as a guard macro and as a call.
    assert!(c.contains("update(t1,t2);"), "{c}");
    assert!(c.contains("boundary(t1);"), "{c}");
}

#[test]
fn braces_balance() {
    let (prog, names) = sample();
    let c = to_c_program(&prog, &names, "scan");
    let open = c.matches('{').count();
    let close = c.matches('}').count();
    assert_eq!(open, close, "{c}");
}
