//! Recursive code generation over separated regions, with CLooG-style
//! code compaction and syntactic (non-Gist) guard residuals.

use crate::separate::{separate, sort_regions, Region};
use crate::Options;
use codegenplus::{CodeGenError, Statement};
use omega::{Conjunct, LinExpr, Set, Space};
use polyir::{Cond, CondAtom, Expr, Stmt};

pub(crate) struct Gen<'a> {
    pub space: Space,
    pub stmts: &'a [Statement],
    /// Disjoint pieces: (statement index, conjunct domain).
    pub pieces: Vec<(usize, Conjunct)>,
    pub options: Options,
}

impl Gen<'_> {
    pub fn run(&self, known: &Conjunct) -> Result<Stmt, CodeGenError> {
        let all: Vec<usize> = (0..self.pieces.len()).collect();
        self.gen_level(&all, 1, known)
    }

    fn max_level(&self) -> usize {
        self.space.n_vars()
    }

    fn project_inner(&self, piece: usize, level: usize) -> Set {
        let dom = self.pieces[piece].1.to_set();
        if level >= self.max_level() {
            dom
        } else {
            dom.project_out(level, self.max_level() - level)
        }
    }

    fn gen_level(
        &self,
        active: &[usize],
        level: usize,
        context: &Conjunct,
    ) -> Result<Stmt, CodeGenError> {
        if level > self.max_level() {
            return Ok(self.emit_statements(active, context));
        }
        let v = level - 1;
        // Projections, approximated (strides handled via hulls below).
        let projections: Vec<(usize, Set)> = active
            .iter()
            .map(|&p| {
                (
                    p,
                    self.project_inner(p, level)
                        .intersect_conjunct(context)
                        .approximate(),
                )
            })
            .collect();
        let stop = self.options.stop_level.map(|s| level >= s).unwrap_or(false);
        let mut regions = if stop {
            // -f/-l style: no separation below this level; one region with
            // everything (guards materialize inside the loop instead).
            let mut union = Set::empty(&self.space);
            for (_, p) in &projections {
                union = union.union(p);
            }
            let mut out = Vec::new();
            for c in union.make_disjoint() {
                let c = c.simplified();
                if c.is_sat() {
                    out.push(Region {
                        domain: c,
                        active: active.to_vec(),
                    });
                }
            }
            out
        } else {
            separate(&projections, &self.space)
        };
        sort_regions(&mut regions, v);
        let mut parts: Vec<(Region, Stmt)> = Vec::new();
        for region in regions {
            let code = self.gen_region(&region, level, context)?;
            if !matches!(code, Stmt::Nop) {
                parts.push((region, code));
            }
        }
        if self.options.compact {
            parts = self.compact(parts, v);
        }
        Ok(Stmt::seq(parts.into_iter().map(|(_, s)| s).collect()))
    }

    fn gen_region(
        &self,
        region: &Region,
        level: usize,
        context: &Conjunct,
    ) -> Result<Stmt, CodeGenError> {
        let v = level - 1;
        // Exact per-piece projections within the region give the stride.
        let mut exact = Set::empty(&self.space);
        for &p in &region.active {
            exact = exact.union(
                &self
                    .project_inner(p, level)
                    .intersect_conjunct(context)
                    .intersect_conjunct(&region.domain),
            );
        }
        if exact.is_empty() {
            return Ok(Stmt::Nop);
        }
        let hull = exact.hull();
        // Degenerate level?
        if let Some((c, e)) = hull.equality_on(v) {
            let value = conv(&e);
            let mut ctx2 = context.intersect(&region.domain);
            let eq = (LinExpr::var(&self.space, v) * c - e.clone()).eq0();
            ctx2.add_constraint(&eq);
            let body = self.gen_level(&region.active, level + 1, &ctx2)?;
            if matches!(body, Stmt::Nop) {
                return Ok(Stmt::Nop);
            }
            let mut enforced = Conjunct::universe(&self.space);
            enforced.add_constraint(&(LinExpr::var(&self.space, v) * c - e.clone()).eq0());
            let (outer, inner) = self.residual_guards(&region.domain, context, &enforced, v);
            let assign = Stmt::Assign {
                var: v,
                value: if c == 1 {
                    value.clone()
                } else {
                    Expr::FloorDiv(Box::new(value.clone()), c)
                },
                body: Box::new(Stmt::guarded(inner, body)),
            };
            // CLooG always guards non-unit divisions.
            let guarded = if c == 1 {
                assign
            } else {
                Stmt::guarded(Cond::atom(CondAtom::ModZero(value, c)), assign)
            };
            return Ok(Stmt::guarded(outer, guarded));
        }
        let (mut lowers, mut uppers) = hull.bounds_on(v);
        if lowers.is_empty() || uppers.is_empty() {
            // The hull may bound `v` only through an existential the
            // integer-exact eliminator could not remove (non-unit
            // coefficients on the local). The real shadow makes such bounds
            // explicit; it over-approximates, which is sound for loop
            // bounds because the residual guards re-test the domain.
            let widened = hull.real_shadow();
            let (wl, wu) = widened.bounds_on(v);
            if lowers.is_empty() {
                lowers = wl;
            }
            if uppers.is_empty() {
                uppers = wu;
            }
        }
        if lowers.is_empty() || uppers.is_empty() {
            return Err(CodeGenError::UnboundedLoop { level });
        }
        let mut lower = Expr::max_of(lowers.iter().map(lower_bound_expr).collect());
        let upper = Expr::min_of(uppers.iter().map(upper_bound_expr).collect());
        let mut step = 1;
        let mut bounds_rows = Conjunct::universe(&self.space);
        for b in &lowers {
            bounds_rows
                .add_constraint(&(LinExpr::var(&self.space, v) * b.coeff - b.expr.clone()).geq0());
        }
        for b in &uppers {
            bounds_rows
                .add_constraint(&(b.expr.clone() - LinExpr::var(&self.space, v) * b.coeff).geq0());
        }
        if let Some((m, r)) = hull.stride_on(v) {
            if r.is_constant() {
                // Strided loop with a constant residue; CLooG emits an
                // aligned constant lower bound when it can fold it.
                step = m;
                lower = align_lower(&lower, m, r.constant_term());
                bounds_rows.add_congruence(&(LinExpr::var(&self.space, v) - r), 0, m);
            }
            // Non-constant residues stay as modulo guards in the body —
            // the redundant inner-loop checks of paper Figure 8(b).
        }
        let ctx2 = context.intersect(&region.domain).intersect(&bounds_rows);
        let body = self.gen_level(&region.active, level + 1, &ctx2)?;
        if matches!(body, Stmt::Nop) {
            return Ok(Stmt::Nop);
        }
        // Region constraints not enforced by the loop bounds become guards;
        // the residual is *syntactic* — CLooG does not gist against the
        // accumulated context, so redundant conditions like `if (n >= 1)`
        // survive. Residuals referencing the loop variable are tested
        // inside the loop (the paper's inner-loop overhead).
        let (outer, inner) = self.residual_guards(&region.domain, context, &bounds_rows, v);
        let looped = Stmt::Loop {
            var: v,
            lower,
            upper,
            step,
            body: Box::new(Stmt::guarded(inner, body)),
        };
        Ok(Stmt::guarded(outer, looped))
    }

    fn emit_statements(&self, active: &[usize], context: &Conjunct) -> Stmt {
        let mut out = Vec::new();
        let mut active: Vec<usize> = active.to_vec();
        active.sort_by_key(|&p| (self.pieces[p].0, p));
        for p in active {
            let (stmt_idx, domain) = &self.pieces[p];
            // Exactness check: drop pieces empty under the context.
            if !domain.intersect(context).is_sat() {
                continue;
            }
            let (outer, inner) = self.residual_guards(
                domain,
                context,
                &Conjunct::universe(&self.space),
                usize::MAX,
            );
            let guard = outer.and(inner);
            let stmt = &self.stmts[*stmt_idx];
            let call = Stmt::Call {
                stmt: *stmt_idx,
                args: stmt.args.iter().map(conv).collect(),
            };
            out.push(Stmt::guarded(guard, call));
        }
        Stmt::seq(out)
    }

    /// Constraints of `domain` that are not *syntactically* present in
    /// `context ∪ enforced` (after canonicalization), split into the part
    /// testable before entering the loop (`outer`, free of `v`) and the
    /// part that must be tested inside it (`inner`, referencing `v`). The
    /// residual is syntactic, not semantic — the source of the redundant
    /// guards the paper measures against CLooG.
    fn residual_guards(
        &self,
        domain: &Conjunct,
        context: &Conjunct,
        enforced: &Conjunct,
        v: usize,
    ) -> (Cond, Cond) {
        let dom = domain.simplified();
        // CLooG computes each region's description minimally, so atoms the
        // *current loop* enforces are dropped semantically; but it does not
        // reason about the enclosing context, so cross-level redundancy is
        // only removed when syntactically identical (the paper's critique).
        let known = context.intersect(enforced).simplified();
        let known_atoms: Vec<String> = known.guard_atoms().iter().map(|a| a.to_string()).collect();
        let mut outer = Vec::new();
        let mut inner = Vec::new();
        for atom in dom.guard_atoms() {
            if known_atoms.contains(&atom.to_string()) {
                continue;
            }
            let enforced_implies = atom
                .complement_single()
                .map(|comp| !enforced.intersect(&comp).is_sat())
                .unwrap_or(false);
            if enforced_implies {
                continue;
            }
            if v != usize::MAX && atom.uses_var(v) {
                push_atom_cond(&atom, &mut inner);
            } else {
                push_atom_cond(&atom, &mut outer);
            }
        }
        (Cond::from_atoms(outer), Cond::from_atoms(inner))
    }

    /// Compaction: merges adjacent fragments whose generated code is
    /// structurally identical and whose union is exactly its hull.
    fn compact(&self, parts: Vec<(Region, Stmt)>, v: usize) -> Vec<(Region, Stmt)> {
        let mut out: Vec<(Region, Stmt)> = Vec::new();
        for (region, code) in parts {
            if let Some((prev_region, prev_code)) = out.last() {
                if bodies_mergeable(prev_code, &code) {
                    let union = prev_region.domain.to_set().union(&region.domain.to_set());
                    let hull = union.hull();
                    if hull.to_set().is_subset(&union) {
                        if let Some(merged_code) = remerge_loop(prev_code, &code, &hull, v) {
                            // Sound merge: one loop over the hull.
                            let (pr, _) = out.pop().unwrap();
                            let merged_region = Region {
                                domain: hull,
                                active: {
                                    let mut a = pr.active.clone();
                                    for x in &region.active {
                                        if !a.contains(x) {
                                            a.push(*x);
                                        }
                                    }
                                    a
                                },
                            };
                            out.push((merged_region, merged_code));
                            continue;
                        }
                    }
                }
            }
            out.push((region, code));
        }
        out
    }
}

/// Two fragments are mergeable when both are plain loops with the same
/// variable, step and body.
fn bodies_mergeable(a: &Stmt, b: &Stmt) -> bool {
    match (a, b) {
        (
            Stmt::Loop {
                var: va,
                step: sa,
                body: ba,
                ..
            },
            Stmt::Loop {
                var: vb,
                step: sb,
                body: bb,
                ..
            },
        ) => va == vb && sa == sb && ba == bb,
        _ => false,
    }
}

/// Builds the merged loop over the union hull. For strided loops the
/// hull's lower bound must be re-aligned to the residue class — a raw
/// hull bound may start off-stride (e.g. `for (t1=8; ...; t1+=2)` over an
/// odd-only domain). When the hull does not expose a matching constant
/// residue to align against, the merge is refused (`None`) and the
/// fragments stay separate, which is always sound.
fn remerge_loop(a: &Stmt, _b: &Stmt, hull: &Conjunct, v: usize) -> Option<Stmt> {
    let Stmt::Loop {
        var, step, body, ..
    } = a
    else {
        unreachable!()
    };
    let (lowers, uppers) = hull.bounds_on(v);
    if lowers.is_empty() || uppers.is_empty() {
        // Union hull bounds `v` only through a local; refuse the merge
        // rather than widening (the separate fragments are always sound).
        return None;
    }
    let mut lower = Expr::max_of(lowers.iter().map(lower_bound_expr).collect());
    let upper = Expr::min_of(uppers.iter().map(upper_bound_expr).collect());
    if *step > 1 {
        match hull.stride_on(v) {
            Some((m, r)) if m == *step && r.is_constant() => {
                lower = align_lower(&lower, m, r.constant_term());
            }
            _ => return None,
        }
    }
    Some(Stmt::Loop {
        var: *var,
        lower,
        upper,
        step: *step,
        body: body.clone(),
    })
}

/// First value `>= lower` congruent to `r0` modulo `m`.
fn align_lower(lower: &Expr, m: i64, r0: i64) -> Expr {
    match lower {
        Expr::Const(c) => Expr::Const(c + (r0 - c).rem_euclid(m)),
        other => Expr::add(
            other.clone(),
            Expr::Mod(Box::new(Expr::sub(Expr::Const(r0), other.clone())), m),
        ),
    }
}

fn push_atom_cond(atom: &Conjunct, atoms: &mut Vec<CondAtom>) {
    // Shared lowering with the CodeGen+ crate (the comparison is about the
    // scanning algorithms, not condition rendering).
    for a in codegenplus::cond_of_conjunct(atom).atoms() {
        atoms.push(a.clone());
    }
}

fn lower_bound_expr(b: &omega::VarBound) -> Expr {
    if b.coeff == 1 {
        conv(&b.expr)
    } else {
        Expr::CeilDiv(Box::new(conv(&b.expr)), b.coeff)
    }
}

fn upper_bound_expr(b: &omega::VarBound) -> Expr {
    if b.coeff == 1 {
        conv(&b.expr)
    } else {
        Expr::FloorDiv(Box::new(conv(&b.expr)), b.coeff)
    }
}

fn conv(e: &LinExpr) -> Expr {
    let space = e.space().clone();
    let mut acc = Expr::Const(0);
    for v in 0..space.n_vars() {
        let c = e.var_coeff(v);
        if c != 0 {
            acc = Expr::add(acc, Expr::mul(c, Expr::Var(v)));
        }
    }
    for p in 0..space.n_params() {
        let c = e.param_coeff(p);
        if c != 0 {
            acc = Expr::add(acc, Expr::mul(c, Expr::Param(p)));
        }
    }
    Expr::add(acc, Expr::Const(e.constant_term()))
}
