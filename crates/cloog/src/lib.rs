//! # cloog — a CLooG-style baseline polyhedra scanner
//!
//! The comparison baseline of the PLDI 2012 CodeGen+ evaluation,
//! re-implemented from the published algorithm family: Quilleré–
//! Rajopadhye–Wilde **separation** of overlapping polyhedra at every
//! dimension (maximal overhead removal, at the price of code growth),
//! followed by CLooG-style **code compaction** that merges adjacent
//! fragments with identical bodies.
//!
//! Deliberately preserved baseline characteristics the paper measures
//! against (§4):
//!
//! * guard residuals are computed *syntactically*, not with `Gist`, so
//!   redundant conditions (`if (n >= 1)` under a loop that implies it,
//!   repeated modulo checks in inner loops) survive — Figure 8(b)/(e);
//! * complementary guards are **not** merged into if-then-else trees;
//! * strided loops are only produced for constant residues; symbolic
//!   residues become modulo guards inside the innermost loop;
//! * the `-f`/`-l`-style [`Options::stop_level`] trade-off does not
//!   guarantee lexicographic statement order (the paper's §4.1 criticism);
//!   the default full separation does.
//!
//! # Examples
//!
//! ```
//! use cloog::Cloog;
//! use codegenplus::Statement;
//! use omega::Set;
//!
//! let d = Set::parse("[n] -> { [i] : 0 <= i < n }")?;
//! let g = Cloog::new().statement(Statement::new("s0", d)).generate()?;
//! assert!(polyir::to_c(&g.code, &g.names).contains("for"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod gen;
mod separate;

use codegenplus::{CodeGenError, Generated, Statement};
use omega::{Conjunct, Space};
use polyir::Names;

/// Generation options mirroring CLooG's command-line trade-offs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Options {
    /// Merge adjacent fragments with identical bodies (CLooG's reduction
    /// of Quilleré splitting). Default `true`.
    pub compact: bool,
    /// From this 1-based level on, do not separate polyhedra (guards
    /// materialize inside loops instead) — CLooG's `-f`/`-l` style control.
    /// Default `None` (full separation at every level).
    pub stop_level: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            compact: true,
            stop_level: None,
        }
    }
}

/// Builder for a CLooG-style generation run (API mirrors
/// [`codegenplus::CodeGen`] so benchmarks can drive both identically).
#[derive(Clone, Debug, Default)]
pub struct Cloog {
    stmts: Vec<Statement>,
    options: Options,
    known: Option<Conjunct>,
}

impl Cloog {
    /// An empty builder with default options.
    pub fn new() -> Cloog {
        Cloog::default()
    }

    /// Adds a statement (see [`Statement`]).
    pub fn statement(mut self, s: Statement) -> Cloog {
        self.stmts.push(s);
        self
    }

    /// Adds many statements.
    pub fn statements<I: IntoIterator<Item = Statement>>(mut self, it: I) -> Cloog {
        self.stmts.extend(it);
        self
    }

    /// Sets generation options.
    pub fn options(mut self, o: Options) -> Cloog {
        self.options = o;
        self
    }

    /// Declares known context (parameter bounds etc.).
    pub fn known(mut self, known: Conjunct) -> Cloog {
        self.known = Some(known);
        self
    }

    /// Runs the generator.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`codegenplus::CodeGen::generate`].
    pub fn generate(&self) -> Result<Generated, CodeGenError> {
        if self.stmts.is_empty() {
            return Err(CodeGenError::NoStatements);
        }
        let space: &Space = self.stmts[0].domain.space();
        for (i, s) in self.stmts.iter().enumerate() {
            if s.domain.space() != space {
                return Err(CodeGenError::SpaceMismatch { stmt: i });
            }
        }
        let mut pieces = Vec::new();
        for (i, s) in self.stmts.iter().enumerate() {
            for c in s.domain.make_disjoint() {
                let c = c.simplified();
                if c.is_sat() {
                    pieces.push((i, c));
                }
            }
        }
        if pieces.is_empty() {
            return Err(CodeGenError::EmptyDomains);
        }
        let known = self
            .known
            .clone()
            .unwrap_or_else(|| Conjunct::universe(space));
        let g = gen::Gen {
            space: space.clone(),
            stmts: &self.stmts,
            pieces,
            options: self.options,
        };
        // Run under the ambient limits so this baseline reports the same
        // degradation certificate contract as `CodeGen::generate`.
        let (code, certainty) =
            omega::limits::with_limits(omega::limits::current(), || g.run(&known));
        let code = code?;
        let names = Names {
            params: space.param_names().to_vec(),
            vars: (1..=space.n_vars()).map(|i| format!("t{i}")).collect(),
            stmts: self.stmts.iter().map(|s| s.name.clone()).collect(),
        };
        Ok(Generated {
            code,
            names,
            certainty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega::Set;
    use polyir::execute;

    fn gen_with(domains: &[&str], options: Options) -> Generated {
        let mut cg = Cloog::new().options(options);
        for (i, d) in domains.iter().enumerate() {
            cg = cg.statement(Statement::new(format!("s{i}"), Set::parse(d).unwrap()));
        }
        cg.generate().expect("generate")
    }

    fn check_oracle(domains: &[&str], options: Options, params: &[i64], lo: i64, hi: i64) {
        let g = gen_with(domains, options);
        let run = execute(&g.code, params).expect("execute");
        let sets: Vec<Set> = domains.iter().map(|d| Set::parse(d).unwrap()).collect();
        let nv = sets[0].space().n_vars();
        let (lovec, hivec) = (vec![lo; nv], vec![hi; nv]);
        let mut all_points: Vec<Vec<i64>> = Vec::new();
        for s in &sets {
            for p in s.enumerate(params, &lovec, &hivec) {
                if !all_points.contains(&p) {
                    all_points.push(p);
                }
            }
        }
        all_points.sort();
        let mut expected: Vec<(usize, Vec<i64>)> = Vec::new();
        for p in &all_points {
            for (k, s) in sets.iter().enumerate() {
                if s.contains(params, p) {
                    expected.push((k, p.clone()));
                }
            }
        }
        // With full separation the trace must match exactly (lexicographic
        // order guaranteed at the default trade-off point).
        assert_eq!(
            run.trace,
            expected,
            "cloog oracle mismatch for {domains:?}\n{}",
            polyir::to_c(&g.code, &g.names)
        );
    }

    #[test]
    fn triangle() {
        check_oracle(
            &["[n] -> { [i,j] : 0 <= i < n && 0 <= j < i }"],
            Options::default(),
            &[6],
            -1,
            7,
        );
    }

    #[test]
    fn overlapping_statements_separate() {
        check_oracle(
            &["{ [i] : 0 <= i <= 6 }", "{ [i] : 4 <= i <= 9 }"],
            Options::default(),
            &[],
            -1,
            11,
        );
        // Separation produces three loops (prefix, overlap, suffix).
        let g = gen_with(
            &["{ [i] : 0 <= i <= 6 }", "{ [i] : 4 <= i <= 9 }"],
            Options {
                compact: false,
                stop_level: None,
            },
        );
        assert_eq!(
            g.code.count_loops(),
            3,
            "{}",
            polyir::to_c(&g.code, &g.names)
        );
    }

    #[test]
    fn strided_domain() {
        check_oracle(
            &["{ [i] : 1 <= i <= 20 && exists(a : i = 4a + 1) }"],
            Options::default(),
            &[],
            0,
            21,
        );
        // Constant residue → strided loop.
        let g = gen_with(
            &["{ [i] : 1 <= i <= 20 && exists(a : i = 4a + 1) }"],
            Options::default(),
        );
        let txt = polyir::to_c(&g.code, &g.names);
        assert!(txt.contains("t1+=4"), "{txt}");
    }

    #[test]
    fn figure8d_keeps_mod_guards_inline() {
        // CLooG emits one loop with modulo guards for both statements —
        // paper Figure 8(e) — rather than an if/else.
        let domains = [
            "[n] -> { [i] : 1 <= i <= n && exists(a : i = 4a) }",
            "[n] -> { [i] : 1 <= i <= n && exists(a : i = 4a + 2) }",
        ];
        check_oracle(&domains, Options::default(), &[17], 0, 18);
        let g = gen_with(&domains, Options::default());
        let m = polyir::CodeMetrics::of(&g.code, &g.names);
        assert!(
            m.ifs_inside_loops >= 2,
            "expected separate mod guards:\n{}",
            polyir::to_c(&g.code, &g.names)
        );
    }

    #[test]
    fn figure8a_symbolic_residue_guard() {
        let domains = ["[n] -> { [i,j] : 1 <= i && i <= n && i <= j && j <= n && exists(a, b : i = 1 + 4a && j = i + 3b) }"];
        check_oracle(&domains, Options::default(), &[14], 0, 15);
        let g = gen_with(&domains, Options::default());
        let txt = polyir::to_c(&g.code, &g.names);
        // The j ≡ i (mod 3) stride has a symbolic residue: CLooG leaves a
        // modulo check inside the loop nest (Figure 8(b) behaviour).
        assert!(txt.contains("%3 == 0"), "{txt}");
    }

    #[test]
    fn compaction_merges_identical_bodies() {
        // Two adjacent ranges of the same statement: after separation the
        // pieces are identical and contiguous — compaction restores one loop.
        let domains = ["{ [i] : 0 <= i <= 4 || 5 <= i <= 9 }"];
        check_oracle(&domains, Options::default(), &[], -1, 11);
        let g = gen_with(&domains, Options::default());
        assert_eq!(
            g.code.count_loops(),
            1,
            "{}",
            polyir::to_c(&g.code, &g.names)
        );
    }

    #[test]
    fn figure7_produces_duplicated_nests() {
        let domains = [
            "[n] -> { [i,j] : 1 <= i <= 6 && j = 0 && n >= 2 }",
            "[n] -> { [i,j] : 1 <= i <= 6 && 1 <= j <= 6 && n >= 2 }",
            "[n] -> { [i,j] : 1 <= i <= 6 && 1 <= j <= 6 }",
        ];
        check_oracle(&domains, Options::default(), &[2], -1, 8);
        check_oracle(&domains, Options::default(), &[1], -1, 8);
    }

    #[test]
    fn empty_and_error_cases() {
        assert_eq!(
            Cloog::new().generate().unwrap_err(),
            CodeGenError::NoStatements
        );
        let r = Cloog::new()
            .statement(Statement::new(
                "s0",
                Set::parse("{ [i] : 2 <= i <= 1 }").unwrap(),
            ))
            .generate();
        assert_eq!(r.unwrap_err(), CodeGenError::EmptyDomains);
    }

    #[test]
    fn stop_level_still_covers_all_points() {
        let domains = ["{ [i] : 0 <= i <= 4 }", "{ [i] : 8 <= i <= 12 }"];
        let g = gen_with(
            &domains,
            Options {
                compact: true,
                stop_level: Some(1),
            },
        );
        let run = execute(&g.code, &[]).unwrap();
        // Same set of executed instances (order may differ off the default
        // trade-off point; the paper criticizes exactly this).
        let mut got: Vec<(usize, Vec<i64>)> = run.trace;
        got.sort();
        let mut expected = Vec::new();
        for i in 0..=4 {
            expected.push((0usize, vec![i]));
        }
        for i in 8..=12 {
            expected.push((1usize, vec![i]));
        }
        expected.sort();
        assert_eq!(got, expected, "{}", polyir::to_c(&g.code, &g.names));
    }
}
