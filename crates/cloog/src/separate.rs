//! Quilleré–Rajopadhye–Wilde separation: at each dimension, split the
//! projections of the active statements into disjoint regions, ordered
//! lexicographically.

use omega::{Conjunct, LinExpr, Set, Space};

/// A disjoint region at one level: the conjunct describing it and the
/// statement pieces active inside.
#[derive(Clone, Debug)]
pub(crate) struct Region {
    pub domain: Conjunct,
    pub active: Vec<usize>,
}

/// Separates the (already approximated) per-piece projections into disjoint
/// regions. Region count grows with overlap complexity — the code-explosion
/// behaviour the paper attributes to this algorithm family.
pub(crate) fn separate(projections: &[(usize, Set)], space: &Space) -> Vec<Region> {
    let mut regions: Vec<(Set, Vec<usize>)> = Vec::new();
    for (piece, p) in projections {
        if p.is_empty() {
            continue;
        }
        let mut next: Vec<(Set, Vec<usize>)> = Vec::new();
        let mut remainder = p.clone();
        for (dom, active) in regions {
            let inter = dom.intersect(p);
            let only_old = dom.subtract(p);
            if !inter.is_empty() {
                let mut a = active.clone();
                a.push(*piece);
                next.push((inter.clone(), a));
                remainder = remainder.subtract(&dom);
            }
            if !only_old.is_empty() {
                next.push((only_old, active));
            }
        }
        if !remainder.is_empty() {
            next.push((remainder, vec![*piece]));
        }
        regions = next;
    }
    // Fragment region unions into conjuncts (further code growth).
    let mut out = Vec::new();
    for (dom, active) in regions {
        for c in dom.make_disjoint() {
            let c = c.simplified();
            if c.is_sat() {
                out.push(Region {
                    domain: c,
                    active: active.clone(),
                });
            }
        }
    }
    let _ = space;
    out
}

/// Orders regions along dimension `v`: `a` strictly precedes `b` when no
/// point of `a` has a `v` value ≥ some point of `b` under a common prefix.
///
/// `strictly_before` is a *partial* order — parameter-dependent regions
/// like `[n+2, 5]` and `[6, n-1]` hold in *both* directions (they are
/// never non-empty together), and unrelated pairs in neither — so a
/// comparison sort is wrong: an incomparable neighbour can block an
/// element from reaching a region it is genuinely ordered against (found
/// by differential fuzzing as an out-of-order scan). Instead, place
/// regions by stable topological order of the one-directional relation;
/// pairs related in both directions are unordered (either order is
/// trivially correct), and on a relation cycle — a parametric ordering a
/// single static sequence cannot express — the smallest unplaced index is
/// forced, preserving input order within the cycle.
pub(crate) fn sort_regions(regions: &mut [Region], v: usize) {
    let n = regions.len();
    if n <= 1 {
        return;
    }
    let mut before = vec![false; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                before[i * n + j] = strictly_before(&regions[i].domain, &regions[j].domain, v);
            }
        }
    }
    let must_precede = |i: usize, j: usize| -> bool { before[i * n + j] && !before[j * n + i] };
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        let ready =
            (0..n).find(|&i| !placed[i] && (0..n).all(|j| placed[j] || !must_precede(j, i)));
        let pick = ready.unwrap_or_else(|| (0..n).find(|&i| !placed[i]).unwrap());
        placed[pick] = true;
        order.push(pick);
    }
    let sorted: Vec<Region> = order.iter().map(|&i| regions[i].clone()).collect();
    regions.clone_from_slice(&sorted);
}

/// Is every `v` of `a` strictly below every `v` of `b` sharing the same
/// outer coordinates (variables before `v`)?
pub(crate) fn strictly_before(a: &Conjunct, b: &Conjunct, v: usize) -> bool {
    let space = a.space();
    // Extended space: original vars plus a shadow of var v.
    let mut vars: Vec<String> = space.var_names().to_vec();
    let shadow = format!("__{}shadow", space.var_name(v));
    vars.push(shadow);
    let pr: Vec<&str> = space.param_names().iter().map(String::as_str).collect();
    let vr: Vec<&str> = vars.iter().map(String::as_str).collect();
    let ext = Space::new(&pr, &vr);
    let shadow_idx = ext.n_vars() - 1;
    let a_ext = a.embed_into(&ext);
    let b_ext = b.embed_into(&ext).swap_vars(v, shadow_idx);
    // Inner variables (deeper than v) are unconstrained couplings; project
    // them away from both sides first? They are independent copies already
    // because b's inner vars got b's constraints on shared columns — avoid
    // accidental coupling by projecting inner dims out of both.
    let inner_from = v + 1;
    let inner_count = space.n_vars().saturating_sub(inner_from);
    let a_set = if inner_count > 0 {
        a_ext.to_set().project_out(inner_from, inner_count)
    } else {
        a_ext.to_set()
    };
    let b_set = if inner_count > 0 {
        b_ext.to_set().project_out(inner_from, inner_count)
    } else {
        b_ext.to_set()
    };
    // a.v >= b.shadow for shared outer prefix → NOT strictly before.
    let ge = LinExpr::var(&ext, v).geq(LinExpr::var(&ext, shadow_idx));
    let joint = a_set.intersect(&b_set).intersect_constraint(&ge);
    joint.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(t: &str) -> Set {
        Set::parse(t).unwrap()
    }

    #[test]
    fn separate_overlap_three_ways() {
        let space = set("{ [i] }").space().clone();
        let a = set("{ [i] : 0 <= i <= 6 }");
        let b = set("{ [i] : 4 <= i <= 9 }");
        let mut regions = separate(&[(0, a), (1, b)], &space);
        sort_regions(&mut regions, 0);
        assert_eq!(regions.len(), 3);
        assert_eq!(regions[0].active, vec![0]);
        assert_eq!(regions[1].active, vec![0, 1]);
        assert_eq!(regions[2].active, vec![1]);
        assert!(regions[0].domain.contains(&[], &[3]));
        assert!(regions[1].domain.contains(&[], &[5]));
        assert!(regions[2].domain.contains(&[], &[8]));
    }

    #[test]
    fn separate_identical_domains_single_region() {
        let space = set("{ [i] }").space().clone();
        let a = set("{ [i] : 0 <= i <= 6 }");
        let regions = separate(&[(0, a.clone()), (1, a)], &space);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].active, vec![0, 1]);
    }

    #[test]
    fn strictly_before_basic() {
        let a = set("{ [i] : 0 <= i <= 3 }").conjuncts()[0].clone();
        let b = set("{ [i] : 5 <= i <= 9 }").conjuncts()[0].clone();
        assert!(strictly_before(&a, &b, 0));
        assert!(!strictly_before(&b, &a, 0));
        assert!(!strictly_before(&a, &a, 0));
    }

    #[test]
    fn strictly_before_parametric() {
        let a = set("[n] -> { [i] : 0 <= i < n }").conjuncts()[0].clone();
        let b = set("[n] -> { [i] : i = n }").conjuncts()[0].clone();
        assert!(strictly_before(&a, &b, 0));
        assert!(!strictly_before(&b, &a, 0));
    }

    #[test]
    fn strictly_before_inner_dim_uses_prefix() {
        // Along j (dim 1) with shared i: a: j < i, b: j >= i.
        let a = set("[n] -> { [i,j] : 0 <= j < i }").conjuncts()[0].clone();
        let b = set("[n] -> { [i,j] : i <= j <= n }").conjuncts()[0].clone();
        assert!(strictly_before(&a, &b, 1));
        assert!(!strictly_before(&b, &a, 1));
    }

    #[test]
    fn sort_orders_three_fragments() {
        let space = set("{ [i] }").space().clone();
        let mk = |t: &str| Region {
            domain: set(t).conjuncts()[0].clone(),
            active: vec![0],
        };
        let mut rs = vec![
            mk("{ [i] : 10 <= i <= 12 }"),
            mk("{ [i] : 0 <= i <= 2 }"),
            mk("{ [i] : 5 <= i <= 7 }"),
        ];
        sort_regions(&mut rs, 0);
        let _ = &space;
        assert!(rs[0].domain.contains(&[], &[1]));
        assert!(rs[1].domain.contains(&[], &[6]));
        assert!(rs[2].domain.contains(&[], &[11]));
    }
}
