#!/usr/bin/env python3
"""Validate an OpenMetrics/Prometheus text exposition (e.g. a `codegend`
`/metrics` scrape) for structural correctness.

Checks, per metric family:

* `# HELP` / `# TYPE` metadata appears before any sample of the family,
  at most once each, with a known type;
* counter samples use the `_total` suffix (and gauges never do);
* histogram families expose `_bucket` series with `le` labels that are
  parseable, strictly increasing, and cumulative (counts monotonically
  non-decreasing), end in a `+Inf` bucket, and agree with `_count`;
  `_sum` and `_count` are present per label set;
* sample values parse as numbers, label strings are well-formed, and no
  sample line appears for an undeclared family when `--strict` is given;
* the exposition ends with the OpenMetrics `# EOF` terminator.

Beyond structural validation, the checker evaluates threshold
assertions against the scrape (`--assert EXPR`, repeatable) and renders
a per-class queue summary as GitHub-flavored markdown (`--summary`, for
`$GITHUB_STEP_SUMMARY`). Assertion expressions are comparisons over
metric selectors with arithmetic:

    p99(codegend_queue_wait_seconds{class="interactive"}) <= 0.25
    codegend_jobs_shed_total / codegend_requests_total < 0.05
    sum(codegend_requests_total{status="ok"}) >= 2000

A bare selector sums every matching sample (labels are subset-matched);
`pNN(family{...})` reads the family's cumulative `le` buckets and
returns the smallest edge covering the NN-th percentile; `count()` and
`avg()` count and average matching samples. A selector matching nothing
is an error, not zero — a typo must not pass a gate. Likewise a
quantile over a histogram with zero observations is an error — "p99=0
because nothing ran" would pass any latency gate vacuously; pass
`--allow-empty` to treat empty histograms as 0.0 when a gate must
tolerate idle scrapes.

Usage:
    check_metrics.py FILE        validate a scrape saved to FILE ('-' = stdin)
    check_metrics.py FILE --assert EXPR [--assert EXPR ...]
    check_metrics.py FILE --summary
    check_metrics.py --self-test run the embedded good/bad corpus

Exit status: 0 valid, 1 validation or assertion errors, 2 usage error.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
# name{labels} value  — labels optional; value is the rest of the line.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped", "info"}


def base_family(name):
    """Strips sample-series suffixes down to the declared family name."""
    for suffix in ("_bucket", "_count", "_sum", "_total"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_le(raw):
    if raw == "+Inf":
        return math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def check_text(text, strict=False):
    """Returns a list of error strings; empty means the scrape is valid."""
    errors = []
    types = {}  # family -> declared type
    helps = set()
    samples_seen = set()  # families that have emitted a sample
    # histogram accounting: (family, frozen labels minus le) -> state
    buckets = {}
    counts = {}
    sums = {}
    lines = text.split("\n")
    if text and not text.endswith("\n"):
        errors.append("exposition does not end with a newline")
    saw_eof = False
    for ln, line in enumerate(lines, 1):
        if not line:
            continue
        if saw_eof:
            errors.append(f"line {ln}: content after # EOF")
            break
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "EOF":
                saw_eof = True
                continue
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                family = parts[2]
                if not NAME_RE.fullmatch(family):
                    errors.append(f"line {ln}: bad metric name {family!r}")
                    continue
                if family in samples_seen:
                    errors.append(
                        f"line {ln}: {parts[1]} for {family} after its samples"
                    )
                if parts[1] == "HELP":
                    if family in helps:
                        errors.append(f"line {ln}: duplicate HELP for {family}")
                    helps.add(family)
                else:
                    if family in types:
                        errors.append(f"line {ln}: duplicate TYPE for {family}")
                    mtype = parts[3].strip() if len(parts) > 3 else ""
                    if mtype not in KNOWN_TYPES:
                        errors.append(f"line {ln}: unknown type {mtype!r}")
                    types[family] = mtype
            # other comments are legal and ignored
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {ln}: unparseable sample line {line!r}")
            continue
        name = m.group("name")
        labels = dict(LABEL_RE.findall(m.group("labels") or ""))
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"line {ln}: bad sample value {m.group('value')!r}")
            continue
        family = base_family(name)
        if family not in types and name in types:
            family = name  # e.g. a gauge whose name ends in _count
        mtype = types.get(family)
        if mtype is None:
            if strict:
                errors.append(f"line {ln}: sample for undeclared family {name}")
            samples_seen.add(family)
            continue
        samples_seen.add(family)
        if mtype == "counter":
            if not name.endswith("_total"):
                errors.append(
                    f"line {ln}: counter sample {name} must end in _total"
                )
            if value < 0:
                errors.append(f"line {ln}: negative counter {name} = {value}")
        elif mtype == "gauge":
            if name != family:
                errors.append(f"line {ln}: gauge sample {name} has a suffix")
        elif mtype == "histogram":
            key = (family, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {ln}: {name} bucket without le label")
                    continue
                le = parse_le(labels["le"])
                if le is None:
                    errors.append(f"line {ln}: bad le value {labels['le']!r}")
                    continue
                buckets.setdefault(key, []).append((le, value, ln))
            elif name.endswith("_count"):
                counts[key] = (value, ln)
            elif name.endswith("_sum"):
                sums[key] = (value, ln)
            else:
                errors.append(f"line {ln}: unexpected histogram sample {name}")
    if not saw_eof:
        errors.append("missing # EOF terminator")

    for key, series in sorted(buckets.items()):
        family, labels = key
        where = f"{family}{dict(labels) if labels else ''}"
        les = [le for le, _, _ in series]
        if les != sorted(les) or len(set(les)) != len(les):
            errors.append(f"{where}: le edges not strictly increasing: {les}")
        vals = [v for _, v, _ in series]
        if any(b > a for a, b in zip(vals[1:], vals)):
            errors.append(f"{where}: bucket counts not cumulative: {vals}")
        if not series or series[-1][0] != math.inf:
            errors.append(f"{where}: missing le=\"+Inf\" bucket")
        if key not in counts:
            errors.append(f"{where}: missing _count")
        elif series and series[-1][0] == math.inf and series[-1][1] != counts[key][0]:
            errors.append(
                f"{where}: +Inf bucket {series[-1][1]} != _count {counts[key][0]}"
            )
        if key not in sums:
            errors.append(f"{where}: missing _sum")
    for key in sorted(set(counts) | set(sums)):
        if key not in buckets:
            family, labels = key
            errors.append(f"{family}{dict(labels) if labels else ''}: _count/_sum without buckets")
    return errors


# ---------------------------------------------------------------------------
# Assertion expressions
# ---------------------------------------------------------------------------


class EvalError(Exception):
    """An assertion expression that cannot be evaluated (syntax error,
    selector matching nothing, quantile of a non-histogram)."""


def parse_samples(text):
    """Returns the scrape as a flat list of (name, labels, value)."""
    samples = []
    for line in text.split("\n"):
        if not line or line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            continue
        labels = dict(LABEL_RE.findall(m.group("labels") or ""))
        samples.append((m.group("name"), labels, value))
    return samples


SELECTOR_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>[^}]*)\})?$"
)


def split_selector(sel):
    m = SELECTOR_RE.match(sel)
    if not m:
        raise EvalError(f"bad selector {sel!r}")
    return m.group("name"), dict(LABEL_RE.findall(m.group("labels") or ""))


def select(samples, sel, suffix=""):
    """Samples whose name is `selector name + suffix` and whose labels are
    a superset of the selector's."""
    name, want = split_selector(sel)
    name += suffix
    return [
        (n, ls, v)
        for n, ls, v in samples
        if n == name and all(ls.get(k) == v for k, v in want.items())
    ]


def quantile(samples, sel, q, allow_empty=False):
    """The q-quantile of a histogram family: merges the cumulative `le`
    buckets of every matching series and returns the smallest edge whose
    count covers q of the total. A histogram with zero observations is
    an error unless `allow_empty` (a vacuous p99=0 must not pass a
    latency gate); a quantile past the last finite edge is +Inf (which
    fails any `<=` gate — honest, not forgiving)."""
    by_le = {}
    for _, ls, v in select(samples, sel, "_bucket"):
        le = parse_le(ls.get("le", ""))
        if le is None:
            raise EvalError(f"bad le bucket in {sel!r}")
        by_le[le] = by_le.get(le, 0.0) + v
    if math.inf not in by_le:
        raise EvalError(f"{sel!r} has no +Inf bucket (not a histogram?)")
    total = by_le[math.inf]
    if total == 0:
        if allow_empty:
            return 0.0
        raise EvalError(
            f"{sel!r} histogram has no observations — a quantile over "
            "nothing proves nothing (pass --allow-empty to read it as 0)"
        )
    rank = q * total
    for le in sorted(by_le):
        if by_le[le] >= rank - 1e-9:
            return le
    return math.inf


TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<op><=|>=|==|!=|<|>|[()+\-*/])"
    r"|(?P<num>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
    r"|(?P<sel>[a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?)"
    r")"
)


def tokenize(expr):
    tokens, i = [], 0
    while i < len(expr):
        m = TOKEN_RE.match(expr, i)
        if not m or m.end() == i:
            if expr[i:].strip():
                raise EvalError(f"unparseable at {expr[i:]!r}")
            break
        i = m.end()
        if m.group("op"):
            tokens.append(("op", m.group("op")))
        elif m.group("num"):
            tokens.append(("num", float(m.group("num"))))
        else:
            tokens.append(("sel", m.group("sel")))
    return tokens


class Parser:
    """Recursive descent over `comparison := sum (CMP sum)?`,
    `sum := product (('+'|'-') product)*`,
    `product := unary (('*'|'/') unary)*`,
    `unary := '-'? primary`,
    `primary := number | '(' sum ')' | func '(' selector ')' | selector`."""

    FUNCS = ("sum", "avg", "count")

    def __init__(self, tokens, samples, allow_empty=False):
        self.tokens = tokens
        self.pos = 0
        self.samples = samples
        self.allow_empty = allow_empty

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, kind=None, value=None):
        t = self.peek()
        if t is None or (kind and t[0] != kind) or (value and t[1] != value):
            raise EvalError(f"expected {value or kind}, got {t}")
        self.pos += 1
        return t

    def comparison(self):
        left = self.sum()
        t = self.peek()
        if t is None:
            raise EvalError("assertion must be a comparison, e.g. 'x <= 1'")
        op = self.take("op")[1]
        right = self.sum()
        if self.peek() is not None:
            raise EvalError(f"trailing tokens after comparison: {self.peek()}")
        ok = {
            "<=": left <= right,
            "<": left < right,
            ">=": left >= right,
            ">": left > right,
            "==": left == right,
            "!=": left != right,
        }[op]
        return ok, left, op, right

    def sum(self):
        v = self.product()
        while self.peek() in (("op", "+"), ("op", "-")):
            op = self.take("op")[1]
            rhs = self.product()
            v = v + rhs if op == "+" else v - rhs
        return v

    def product(self):
        v = self.unary()
        while self.peek() in (("op", "*"), ("op", "/")):
            op = self.take("op")[1]
            rhs = self.unary()
            if op == "/":
                if rhs == 0:
                    raise EvalError("division by zero (empty denominator?)")
                v /= rhs
            else:
                v *= rhs
        return v

    def unary(self):
        if self.peek() == ("op", "-"):
            self.take("op")
            return -self.primary()
        return self.primary()

    def primary(self):
        t = self.take()
        if t[0] == "num":
            return t[1]
        if t == ("op", "("):
            v = self.sum()
            self.take("op", ")")
            return v
        if t[0] != "sel":
            raise EvalError(f"unexpected token {t}")
        name = t[1]
        if self.peek() == ("op", "("):  # function call
            self.take("op")
            arg = self.take("sel")[1]
            self.take("op", ")")
            return self.call(name, arg)
        return self.value_of(name)

    def call(self, func, arg):
        m = re.fullmatch(r"p(\d{1,2})", func)
        if m:
            return quantile(
                self.samples, arg, int(m.group(1)) / 100.0, self.allow_empty
            )
        if func not in self.FUNCS:
            raise EvalError(f"unknown function {func!r} (want pNN/sum/avg/count)")
        matched = select(self.samples, arg)
        if not matched and func != "count":
            raise EvalError(f"selector {arg!r} matched no samples")
        if func == "count":
            return float(len(matched))
        total = sum(v for _, _, v in matched)
        return total / len(matched) if func == "avg" else total

    def value_of(self, sel):
        matched = select(self.samples, sel)
        if not matched:
            raise EvalError(f"selector {sel!r} matched no samples")
        return sum(v for _, _, v in matched)


def evaluate(expr, samples, allow_empty=False):
    """Returns (ok, rendered) for one assertion expression."""
    ok, left, op, right = Parser(tokenize(expr), samples, allow_empty).comparison()
    return ok, f"{left:.6g} {op} {right:.6g}"


# ---------------------------------------------------------------------------
# Markdown summary
# ---------------------------------------------------------------------------


def fmt_seconds(s):
    if s == math.inf:
        return "inf"
    if s >= 1.0:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.0f}us"


def summarize(text):
    """Renders the codegend queue families as a GitHub-flavored markdown
    table: one row per priority class with job counts, queue-wait and
    service p50/p99, and shed/timeout counts."""
    samples = parse_samples(text)

    def by_class(name, suffix=""):
        return {
            ls["class"]: v
            for _, ls, v in select(samples, name, suffix)
            if "class" in ls
        }

    served = by_class("codegend_service_seconds", "_count")
    shed = by_class("codegend_jobs_shed_total")
    timeout = by_class("codegend_jobs_timeout_total")
    classes = [
        c
        for c in ("interactive", "batch", "bulk")
        if c in served or c in shed or c in timeout
    ]
    lines = [
        "### codegend queue",
        "",
        "| class | served | queue p50 | queue p99 | service p50 | service p99 | shed | timeout |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for c in classes:
        sel = f'{{class="{c}"}}'
        if served.get(c, 0) > 0:
            qw = f"codegend_queue_wait_seconds{sel}"
            sv = f"codegend_service_seconds{sel}"
            q50, q99 = quantile(samples, qw, 0.50), quantile(samples, qw, 0.99)
            s50, s99 = quantile(samples, sv, 0.50), quantile(samples, sv, 0.99)
            stats = [fmt_seconds(x) for x in (q50, q99, s50, s99)]
        else:
            stats = ["-"] * 4
        lines.append(
            "| {} | {} | {} | {} | {} | {} | {} | {} |".format(
                c,
                int(served.get(c, 0)),
                *stats,
                int(shed.get(c, 0)),
                int(timeout.get(c, 0)),
            )
        )
    # Shed requests are answered `busy` and counted in requests_total, so
    # the rate is shed-over-total, not shed-over-(total+shed).
    total = sum(v for _, _, v in select(samples, "codegend_requests_total"))
    shed_n = sum(shed.values())
    if total > 0:
        lines.append("")
        lines.append(
            f"{int(total)} requests, {int(shed_n)} shed "
            f"({100.0 * shed_n / total:.2f}% shed rate)"
        )
    return "\n".join(lines) + "\n"


GOOD = """\
# HELP codegend_requests Requests handled.
# TYPE codegend_requests counter
codegend_requests_total{kind="kernel",status="ok"} 5
codegend_requests_total{kind="adhoc",status="err"} 1
# HELP codegend_inflight_jobs Jobs currently executing.
# TYPE codegend_inflight_jobs gauge
codegend_inflight_jobs 0
# HELP codegend_request_seconds Request latency.
# TYPE codegend_request_seconds histogram
codegend_request_seconds_bucket{le="0.001"} 2
codegend_request_seconds_bucket{le="0.004"} 5
codegend_request_seconds_bucket{le="+Inf"} 6
codegend_request_seconds_count 6
codegend_request_seconds_sum 0.0125
# EOF
"""

BAD = [
    # counter sample without _total
    (
        "counter sample .* must end in _total",
        "# TYPE x counter\nx 1\n# EOF\n",
    ),
    # metadata after samples
    (
        "after its samples",
        "# TYPE x counter\nx_total 1\n# HELP x late help\n# EOF\n",
    ),
    # non-cumulative buckets
    (
        "not cumulative",
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
        "h_count 5\nh_sum 4\n# EOF\n",
    ),
    # +Inf disagrees with _count
    (
        r"\+Inf bucket .* != _count",
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\nh_count 3\nh_sum 1\n# EOF\n',
    ),
    # missing +Inf
    (
        r'missing le="\+Inf"',
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 1\nh_count 1\nh_sum 1\n# EOF\n',
    ),
    # missing _sum
    (
        "missing _sum",
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 0\nh_count 0\n# EOF\n',
    ),
    # le edges out of order
    (
        "not strictly increasing",
        "# TYPE h histogram\n"
        'h_bucket{le="2"} 1\nh_bucket{le="1"} 1\nh_bucket{le="+Inf"} 1\n'
        "h_count 1\nh_sum 1\n# EOF\n",
    ),
    # missing terminator
    ("missing # EOF", "# TYPE x gauge\nx 1\n"),
    # garbage sample line
    ("unparseable sample", "# TYPE x gauge\n{oops} yes\n# EOF\n"),
    # duplicate TYPE
    ("duplicate TYPE", "# TYPE x gauge\n# TYPE x gauge\nx 1\n# EOF\n"),
]


# A codegend-shaped scrape for the assertion/summary corpus: 100
# interactive jobs with a known queue-wait distribution (90 under 1ms,
# 9 more under 4ms, 1 in +Inf), 2 sheds against 102 requests.
ASSERT_SCRAPE = """\
# TYPE codegend_requests counter
codegend_requests_total{kind="kernel",status="ok"} 100
codegend_requests_total{kind="kernel",status="busy"} 2
# TYPE codegend_jobs_shed counter
codegend_jobs_shed_total{class="interactive"} 2
# TYPE codegend_queue_wait_seconds histogram
codegend_queue_wait_seconds_bucket{class="interactive",le="0.001"} 90
codegend_queue_wait_seconds_bucket{class="interactive",le="0.004"} 99
codegend_queue_wait_seconds_bucket{class="interactive",le="+Inf"} 100
codegend_queue_wait_seconds_count{class="interactive"} 100
codegend_queue_wait_seconds_sum{class="interactive"} 0.2
# TYPE codegend_service_seconds histogram
codegend_service_seconds_bucket{class="interactive",le="0.001"} 50
codegend_service_seconds_bucket{class="interactive",le="+Inf"} 100
codegend_service_seconds_count{class="interactive"} 100
codegend_service_seconds_sum{class="interactive"} 0.3
# TYPE codegend_codegen_seconds histogram
codegend_codegen_seconds_bucket{le="0.001"} 0
codegend_codegen_seconds_bucket{le="+Inf"} 0
codegend_codegen_seconds_count 0
codegend_codegen_seconds_sum 0
# EOF
"""

# (expression, expected verdict) — or (expression, EvalError) when the
# expression itself must be rejected.
ASSERT_CASES = [
    ('p50(codegend_queue_wait_seconds{class="interactive"}) <= 0.001', True),
    ('p99(codegend_queue_wait_seconds{class="interactive"}) <= 0.004', True),
    # The 100th percentile lands in the +Inf bucket — no finite bound
    # can pass, by design.
    ('p99(codegend_queue_wait_seconds{class="interactive"}) <= 0.001', False),
    ("codegend_jobs_shed_total / codegend_requests_total <= 0.05", True),
    ("codegend_jobs_shed_total / codegend_requests_total < 0.01", False),
    ('sum(codegend_requests_total{status="ok"}) >= 100', True),
    ("count(codegend_requests_total) == 2", True),
    ('codegend_requests_total{status="ok"} + codegend_jobs_shed_total == 102', True),
    ("no_such_metric > 0", EvalError),  # typos fail loudly, not as 0
    ("p99(codegend_requests_total) > 0", EvalError),  # not a histogram
    ("codegend_requests_total", EvalError),  # not a comparison
    ("codegend_requests_total / (1 - 1) > 0", EvalError),  # div by zero
    # A zero-observation histogram must not pass a latency gate as p99=0.
    ("p99(codegend_codegen_seconds) <= 1", EvalError),
    ('p99(codegend_service_seconds{class="bulk"}) <= 1', EvalError),
]

# The --allow-empty escape hatch: the same empty-histogram quantiles
# read as 0.0 instead of erroring; everything else is unchanged.
ALLOW_EMPTY_CASES = [
    ("p99(codegend_codegen_seconds) <= 1", True),
    ("p99(codegend_codegen_seconds) == 0", True),
    ('p99(codegend_queue_wait_seconds{class="interactive"}) <= 0.004', True),
    ("no_such_metric > 0", EvalError),  # typos still fail loudly
]


def self_test():
    failures = 0
    errs = check_text(GOOD, strict=True)
    if errs:
        failures += 1
        print("self-test: GOOD corpus rejected:", file=sys.stderr)
        for e in errs:
            print(f"  {e}", file=sys.stderr)
    for pattern, text in BAD:
        errs = check_text(text, strict=True)
        if not any(re.search(pattern, e) for e in errs):
            failures += 1
            print(
                f"self-test: BAD corpus not caught (wanted /{pattern}/, got {errs})",
                file=sys.stderr,
            )
    samples = parse_samples(ASSERT_SCRAPE)
    for cases, allow_empty in ((ASSERT_CASES, False), (ALLOW_EMPTY_CASES, True)):
        for expr, want in cases:
            try:
                ok, rendered = evaluate(expr, samples, allow_empty)
            except EvalError as e:
                if want is not EvalError:
                    failures += 1
                    print(f"self-test: {expr!r} raised {e}", file=sys.stderr)
                continue
            if want is EvalError:
                failures += 1
                print(f"self-test: {expr!r} should be rejected", file=sys.stderr)
            elif ok is not want:
                failures += 1
                print(
                    f"self-test: {expr!r} -> {ok} ({rendered}), want {want}",
                    file=sys.stderr,
                )
    md = summarize(ASSERT_SCRAPE)
    for needle in ("| interactive | 100 |", "1.00ms", "4.00ms", "1.96% shed rate"):
        if needle not in md:
            failures += 1
            print(f"self-test: summary missing {needle!r}:\n{md}", file=sys.stderr)
    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(
        f"self-test: ok (1 good, {len(BAD)} bad expositions, "
        f"{len(ASSERT_CASES) + len(ALLOW_EMPTY_CASES)} assertions)"
    )
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", nargs="?", help="scrape to validate ('-' = stdin)")
    ap.add_argument(
        "--self-test", action="store_true", help="run the embedded corpus instead"
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="also fail on samples with no TYPE declaration",
    )
    ap.add_argument(
        "--assert",
        dest="asserts",
        action="append",
        default=[],
        metavar="EXPR",
        help="threshold assertion over the scrape, e.g. "
        "'p99(codegend_queue_wait_seconds{class=\"interactive\"}) <= 0.25' "
        "(repeatable; all must hold)",
    )
    ap.add_argument(
        "--allow-empty",
        action="store_true",
        help="treat quantiles over zero-observation histograms as 0.0 "
        "instead of erroring (for gates that must tolerate idle scrapes)",
    )
    ap.add_argument(
        "--summary",
        action="store_true",
        help="print the per-class queue table as GitHub-flavored markdown",
    )
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.file:
        ap.error("FILE required unless --self-test")
    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    if args.summary:
        print(summarize(text), end="")
        return
    errors = check_text(text, strict=args.strict)
    for e in errors:
        print(e, file=sys.stderr)
    samples = parse_samples(text)
    failed = 0
    for expr in args.asserts:
        try:
            ok, rendered = evaluate(expr, samples, args.allow_empty)
        except EvalError as e:
            failed += 1
            print(f"assert ERROR {expr}  ({e})", file=sys.stderr)
            continue
        verdict = "ok" if ok else "FAIL"
        out = sys.stdout if ok else sys.stderr
        print(f"assert {verdict} {expr}  ({rendered})", file=out)
        failed += 0 if ok else 1
    n_samples = sum(
        1 for l in text.split("\n") if l and not l.startswith("#")
    )
    if errors or failed:
        print(
            f"{len(errors)} error(s), {failed} failed assertion(s) "
            f"in {n_samples} samples",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"ok: {n_samples} samples, valid exposition")


if __name__ == "__main__":
    main()
