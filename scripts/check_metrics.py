#!/usr/bin/env python3
"""Validate an OpenMetrics/Prometheus text exposition (e.g. a `codegend`
`/metrics` scrape) for structural correctness.

Checks, per metric family:

* `# HELP` / `# TYPE` metadata appears before any sample of the family,
  at most once each, with a known type;
* counter samples use the `_total` suffix (and gauges never do);
* histogram families expose `_bucket` series with `le` labels that are
  parseable, strictly increasing, and cumulative (counts monotonically
  non-decreasing), end in a `+Inf` bucket, and agree with `_count`;
  `_sum` and `_count` are present per label set;
* sample values parse as numbers, label strings are well-formed, and no
  sample line appears for an undeclared family when `--strict` is given;
* the exposition ends with the OpenMetrics `# EOF` terminator.

Usage:
    check_metrics.py FILE        validate a scrape saved to FILE ('-' = stdin)
    check_metrics.py --self-test run the embedded good/bad corpus

Exit status: 0 valid, 1 validation errors, 2 usage error.
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
# name{labels} value  — labels optional; value is the rest of the line.
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped", "info"}


def base_family(name):
    """Strips sample-series suffixes down to the declared family name."""
    for suffix in ("_bucket", "_count", "_sum", "_total"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_le(raw):
    if raw == "+Inf":
        return math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def check_text(text, strict=False):
    """Returns a list of error strings; empty means the scrape is valid."""
    errors = []
    types = {}  # family -> declared type
    helps = set()
    samples_seen = set()  # families that have emitted a sample
    # histogram accounting: (family, frozen labels minus le) -> state
    buckets = {}
    counts = {}
    sums = {}
    lines = text.split("\n")
    if text and not text.endswith("\n"):
        errors.append("exposition does not end with a newline")
    saw_eof = False
    for ln, line in enumerate(lines, 1):
        if not line:
            continue
        if saw_eof:
            errors.append(f"line {ln}: content after # EOF")
            break
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "EOF":
                saw_eof = True
                continue
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                family = parts[2]
                if not NAME_RE.fullmatch(family):
                    errors.append(f"line {ln}: bad metric name {family!r}")
                    continue
                if family in samples_seen:
                    errors.append(
                        f"line {ln}: {parts[1]} for {family} after its samples"
                    )
                if parts[1] == "HELP":
                    if family in helps:
                        errors.append(f"line {ln}: duplicate HELP for {family}")
                    helps.add(family)
                else:
                    if family in types:
                        errors.append(f"line {ln}: duplicate TYPE for {family}")
                    mtype = parts[3].strip() if len(parts) > 3 else ""
                    if mtype not in KNOWN_TYPES:
                        errors.append(f"line {ln}: unknown type {mtype!r}")
                    types[family] = mtype
            # other comments are legal and ignored
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {ln}: unparseable sample line {line!r}")
            continue
        name = m.group("name")
        labels = dict(LABEL_RE.findall(m.group("labels") or ""))
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"line {ln}: bad sample value {m.group('value')!r}")
            continue
        family = base_family(name)
        if family not in types and name in types:
            family = name  # e.g. a gauge whose name ends in _count
        mtype = types.get(family)
        if mtype is None:
            if strict:
                errors.append(f"line {ln}: sample for undeclared family {name}")
            samples_seen.add(family)
            continue
        samples_seen.add(family)
        if mtype == "counter":
            if not name.endswith("_total"):
                errors.append(
                    f"line {ln}: counter sample {name} must end in _total"
                )
            if value < 0:
                errors.append(f"line {ln}: negative counter {name} = {value}")
        elif mtype == "gauge":
            if name != family:
                errors.append(f"line {ln}: gauge sample {name} has a suffix")
        elif mtype == "histogram":
            key = (family, tuple(sorted((k, v) for k, v in labels.items() if k != "le")))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {ln}: {name} bucket without le label")
                    continue
                le = parse_le(labels["le"])
                if le is None:
                    errors.append(f"line {ln}: bad le value {labels['le']!r}")
                    continue
                buckets.setdefault(key, []).append((le, value, ln))
            elif name.endswith("_count"):
                counts[key] = (value, ln)
            elif name.endswith("_sum"):
                sums[key] = (value, ln)
            else:
                errors.append(f"line {ln}: unexpected histogram sample {name}")
    if not saw_eof:
        errors.append("missing # EOF terminator")

    for key, series in sorted(buckets.items()):
        family, labels = key
        where = f"{family}{dict(labels) if labels else ''}"
        les = [le for le, _, _ in series]
        if les != sorted(les) or len(set(les)) != len(les):
            errors.append(f"{where}: le edges not strictly increasing: {les}")
        vals = [v for _, v, _ in series]
        if any(b > a for a, b in zip(vals[1:], vals)):
            errors.append(f"{where}: bucket counts not cumulative: {vals}")
        if not series or series[-1][0] != math.inf:
            errors.append(f"{where}: missing le=\"+Inf\" bucket")
        if key not in counts:
            errors.append(f"{where}: missing _count")
        elif series and series[-1][0] == math.inf and series[-1][1] != counts[key][0]:
            errors.append(
                f"{where}: +Inf bucket {series[-1][1]} != _count {counts[key][0]}"
            )
        if key not in sums:
            errors.append(f"{where}: missing _sum")
    for key in sorted(set(counts) | set(sums)):
        if key not in buckets:
            family, labels = key
            errors.append(f"{family}{dict(labels) if labels else ''}: _count/_sum without buckets")
    return errors


GOOD = """\
# HELP codegend_requests Requests handled.
# TYPE codegend_requests counter
codegend_requests_total{kind="kernel",status="ok"} 5
codegend_requests_total{kind="adhoc",status="err"} 1
# HELP codegend_inflight_jobs Jobs currently executing.
# TYPE codegend_inflight_jobs gauge
codegend_inflight_jobs 0
# HELP codegend_request_seconds Request latency.
# TYPE codegend_request_seconds histogram
codegend_request_seconds_bucket{le="0.001"} 2
codegend_request_seconds_bucket{le="0.004"} 5
codegend_request_seconds_bucket{le="+Inf"} 6
codegend_request_seconds_count 6
codegend_request_seconds_sum 0.0125
# EOF
"""

BAD = [
    # counter sample without _total
    (
        "counter sample .* must end in _total",
        "# TYPE x counter\nx 1\n# EOF\n",
    ),
    # metadata after samples
    (
        "after its samples",
        "# TYPE x counter\nx_total 1\n# HELP x late help\n# EOF\n",
    ),
    # non-cumulative buckets
    (
        "not cumulative",
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
        "h_count 5\nh_sum 4\n# EOF\n",
    ),
    # +Inf disagrees with _count
    (
        r"\+Inf bucket .* != _count",
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\nh_count 3\nh_sum 1\n# EOF\n',
    ),
    # missing +Inf
    (
        r'missing le="\+Inf"',
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 1\nh_count 1\nh_sum 1\n# EOF\n',
    ),
    # missing _sum
    (
        "missing _sum",
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 0\nh_count 0\n# EOF\n',
    ),
    # le edges out of order
    (
        "not strictly increasing",
        "# TYPE h histogram\n"
        'h_bucket{le="2"} 1\nh_bucket{le="1"} 1\nh_bucket{le="+Inf"} 1\n'
        "h_count 1\nh_sum 1\n# EOF\n",
    ),
    # missing terminator
    ("missing # EOF", "# TYPE x gauge\nx 1\n"),
    # garbage sample line
    ("unparseable sample", "# TYPE x gauge\n{oops} yes\n# EOF\n"),
    # duplicate TYPE
    ("duplicate TYPE", "# TYPE x gauge\n# TYPE x gauge\nx 1\n# EOF\n"),
]


def self_test():
    failures = 0
    errs = check_text(GOOD, strict=True)
    if errs:
        failures += 1
        print("self-test: GOOD corpus rejected:", file=sys.stderr)
        for e in errs:
            print(f"  {e}", file=sys.stderr)
    for pattern, text in BAD:
        errs = check_text(text, strict=True)
        if not any(re.search(pattern, e) for e in errs):
            failures += 1
            print(
                f"self-test: BAD corpus not caught (wanted /{pattern}/, got {errs})",
                file=sys.stderr,
            )
    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"self-test: ok (1 good, {len(BAD)} bad expositions)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", nargs="?", help="scrape to validate ('-' = stdin)")
    ap.add_argument(
        "--self-test", action="store_true", help="run the embedded corpus instead"
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="also fail on samples with no TYPE declaration",
    )
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.file:
        ap.error("FILE required unless --self-test")
    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    errors = check_text(text, strict=args.strict)
    for e in errors:
        print(e, file=sys.stderr)
    n_samples = sum(
        1 for l in text.split("\n") if l and not l.startswith("#")
    )
    if errors:
        print(f"{len(errors)} error(s) in {n_samples} samples", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {n_samples} samples, valid exposition")


if __name__ == "__main__":
    main()
