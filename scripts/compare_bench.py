#!/usr/bin/env python3
"""Gate a fresh `table1 --json` snapshot against the committed baseline.

Deterministic metrics (`lines`, `dynamic_cost`, `instances`) must match the
baseline exactly — they only change when code generation itself changes, and
such a change must be reviewed by re-committing `BENCH_table1.json`.

`codegen_ns` is wall-clock and noisy, so it is gated with a relative
tolerance (default +25%): the check fails only when a kernel's code
generation got more than `tolerance` slower than the baseline. Getting
faster never fails, but an improvement beyond the same tolerance is
flagged so the baseline gets refreshed and the gain becomes the new floor
instead of slack for future regressions. `compile_ns` is a stand-in metric
and is reported but not gated.

When `$GITHUB_STEP_SUMMARY` is set (or `--summary FILE` is given), a
per-kernel markdown delta table is appended to it for the CI job summary.

Exit status: 0 clean, 1 regression, 2 usage/shape error.
"""

import argparse
import json
import os
import sys

EXACT = ("lines", "dynamic_cost", "instances")
TOOLS = ("cloog", "cgplus")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("version") != 1:
        sys.exit(f"{path}: unsupported snapshot version {doc.get('version')!r}")
    return doc


def delta_table(rows):
    """Per-kernel markdown table of codegen-time deltas vs the baseline."""
    lines = [
        "### Bench snapshot vs committed baseline",
        "",
        "| kernel | tool | baseline codegen | current codegen | ratio | verdict |",
        "|---|---|---:|---:|---:|---|",
    ]
    for kernel, tool, base_ns, cur_ns, ratio, verdict in rows:
        lines.append(
            f"| {kernel} | {tool} | {base_ns:,} ns | {cur_ns:,} ns"
            f" | {ratio:.2f}x | {verdict} |"
        )
    lines.append("")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_table1.json")
    ap.add_argument("current", help="freshly generated snapshot")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative codegen-time regression (default 0.25 = +25%%);"
        " improvements beyond the same margin are flagged for a baseline refresh",
    )
    ap.add_argument(
        "--summary",
        default=os.environ.get("GITHUB_STEP_SUMMARY"),
        help="markdown file to append the per-kernel delta table to"
        " (default: $GITHUB_STEP_SUMMARY when set)",
    )
    args = ap.parse_args()
    base, cur = load(args.baseline), load(args.current)

    failures = []
    improvements = []
    table_rows = []
    if base["n"] != cur["n"]:
        sys.exit(f"problem size differs: baseline n={base['n']}, current n={cur['n']}")
    base_rows = {r["kernel"]: r for r in base["rows"]}
    cur_rows = {r["kernel"]: r for r in cur["rows"]}
    if set(base_rows) != set(cur_rows):
        sys.exit(
            f"kernel sets differ: baseline {sorted(base_rows)}, current {sorted(cur_rows)}"
        )

    for kernel in base_rows:
        for tool in TOOLS:
            b, c = base_rows[kernel][tool], cur_rows[kernel][tool]
            for key in EXACT:
                if b[key] != c[key]:
                    failures.append(
                        f"{kernel}/{tool}/{key}: {c[key]} != baseline {b[key]}"
                        " (deterministic metric changed; review and re-commit"
                        " BENCH_table1.json if intended)"
                    )
            ratio = c["codegen_ns"] / max(b["codegen_ns"], 1)
            line = (
                f"{kernel}/{tool}: codegen {b['codegen_ns']} -> {c['codegen_ns']} ns"
                f" ({ratio:.2f}x)"
            )
            verdict = "ok"
            if ratio > 1 + args.tolerance:
                failures.append(f"{line} exceeds +{args.tolerance:.0%} tolerance")
                line += "  REGRESSION"
                verdict = "**regression**"
            elif ratio < 1 / (1 + args.tolerance):
                improvements.append(
                    f"{line} — faster than the -{args.tolerance:.0%} flag margin;"
                    " refresh BENCH_table1.json to lock in the gain"
                )
                line += "  IMPROVEMENT"
                verdict = "improvement — refresh baseline"
            print(line)
            table_rows.append(
                (kernel, tool, b["codegen_ns"], c["codegen_ns"], ratio, verdict)
            )

    if args.summary:
        try:
            with open(args.summary, "a") as f:
                f.write(delta_table(table_rows) + "\n")
        except OSError as e:
            print(f"cannot write summary {args.summary}: {e}", file=sys.stderr)

    if improvements:
        print(f"\n{len(improvements)} significant improvement(s):")
        for line in improvements:
            print(f"  {line}")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("\nbench snapshot within tolerance of baseline")


if __name__ == "__main__":
    main()
