#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file.

Accepts traces from `table1 --trace` and from the codegend flight
recorder (`GET /debug/flight`). Checks that the file is well-formed JSON
and that the duration events are balanced: every `E` closes the
innermost open `B` of the same thread, and no thread ends with an open
span. Instant events (`ph: "i"`) are allowed and do not affect balance.
Run with `--self-test` to verify the checker itself rejects the
malformed shapes it exists to catch (CI does this before trusting a
pass verdict).
"""

import argparse
import json
import sys


def check(events):
    """Returns the event count; raises AssertionError on a malformed trace."""
    stacks = {}
    for e in events:
        if e["ph"] == "i":  # instant event: no stack discipline to keep
            continue
        if e["ph"] not in ("B", "E"):
            raise AssertionError(f"unexpected phase: {e}")
        s = stacks.setdefault(e["tid"], [])
        if e["ph"] == "B":
            s.append(e["name"])
        else:
            if not s or s[-1] != e["name"]:
                raise AssertionError(f"unbalanced E: {e}")
            s.pop()
    still_open = {tid: s for tid, s in stacks.items() if s}
    if still_open:
        raise AssertionError(f"unclosed B events: {still_open}")
    return len(events)


def self_test():
    good = [
        {"ph": "B", "tid": 1, "name": "a"},
        {"ph": "B", "tid": 2, "name": "c"},
        {"ph": "i", "tid": 2, "name": "tick"},
        {"ph": "B", "tid": 1, "name": "b"},
        {"ph": "E", "tid": 1, "name": "b"},
        {"ph": "E", "tid": 2, "name": "c"},
        {"ph": "E", "tid": 1, "name": "a"},
    ]
    assert check(good) == 7
    bad_traces = [
        [{"ph": "B", "tid": 1, "name": "a"}],  # unclosed span
        [{"ph": "E", "tid": 1, "name": "a"}],  # E without B
        [  # E closes the wrong span
            {"ph": "B", "tid": 1, "name": "a"},
            {"ph": "E", "tid": 1, "name": "b"},
        ],
        [  # cross-thread close
            {"ph": "B", "tid": 1, "name": "a"},
            {"ph": "E", "tid": 2, "name": "a"},
        ],
        [{"ph": "X", "tid": 1, "name": "a"}],  # unknown phase
    ]
    for bad in bad_traces:
        try:
            check(bad)
        except AssertionError:
            continue
        sys.exit(f"self-test: accepted invalid trace {bad}")
    print("self-test ok: all malformed shapes rejected")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", nargs="?", help="Chrome trace-event JSON file")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        self_test()
        return
    if not args.trace:
        ap.error("a trace file (or --self-test) is required")
    with open(args.trace) as f:
        events = json.load(f)
    n = check(events)
    print(f"ok: {n} balanced events")


if __name__ == "__main__":
    main()
