#!/usr/bin/env python3
"""Validate a collapsed-stack profile (the `format=collapsed` output of
codegend's `GET /debug/pprof/profile`, or `table1 --profile FILE`) and
optionally render it as a self-contained SVG flamegraph.

A collapsed profile is one line per distinct stack:

    frame;frame;...;leaf count

Checks:

* every line parses as `stack<space>count` with a positive integer
  count and no empty frames;
* the profile is non-empty and holds at least `--min-samples` samples;
* every `--require SUBSTR` (repeatable) matches some frame of some
  stack — the CI lanes use this to assert that solver/queue frames
  (`serve::execute_task`, `omega::`) are identifiable under load, i.e.
  that symbolization and frame-pointer unwinding actually worked;
* `--require-span` asserts at least one sample is span-attributed (a
  synthetic `span:<name>` root frame), proving the omega::trace
  profiler hook fired during the capture.

With `--flamegraph OUT.svg`, a dependency-free flamegraph is written
(width-proportional boxes, hover titles) — small enough to upload as a
CI artifact next to the raw profile.

Usage:
    check_profile.py FILE [--min-samples N] [--require SUBSTR ...]
                          [--require-span] [--flamegraph OUT.svg] [--top N]
    check_profile.py --self-test

Exit status: 0 valid, 1 validation failure, 2 usage error.
"""

import argparse
import html
import sys


def parse_collapsed(text):
    """Returns (stacks, errors): stacks as a list of ([frames], count)."""
    stacks, errors = [], []
    for i, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        stack, sep, count = line.rpartition(" ")
        if not sep or not stack:
            errors.append(f"line {i}: not 'stack<space>count': {line[:120]!r}")
            continue
        try:
            n = int(count)
        except ValueError:
            errors.append(f"line {i}: count {count!r} is not an integer")
            continue
        if n <= 0:
            errors.append(f"line {i}: count must be positive, got {n}")
            continue
        frames = stack.split(";")
        if any(not f for f in frames):
            errors.append(f"line {i}: empty frame in {stack[:120]!r}")
            continue
        stacks.append((frames, n))
    return stacks, errors


def check(stacks, errors, min_samples, require, require_span):
    """Appends semantic failures to `errors`; returns total sample count."""
    total = sum(n for _, n in stacks)
    if not stacks:
        errors.append("profile holds no stacks at all")
    if total < min_samples:
        errors.append(f"only {total} samples, need at least {min_samples}")
    for want in require:
        if not any(want in f for frames, _ in stacks for f in frames):
            errors.append(f"no frame contains {want!r} in any stack")
    if require_span and not any(
        frames[0].startswith("span:") for frames, _ in stacks
    ):
        errors.append(
            "no span-attributed sample (span:<name> root) — "
            "the omega::trace profiler hook never fired during the capture"
        )
    return total


def hottest(stacks, top):
    """(frame, inclusive-count) for the `top` hottest non-root frames."""
    by_frame = {}
    for frames, n in stacks:
        for f in set(frames):
            by_frame[f] = by_frame.get(f, 0) + n
    ranked = sorted(by_frame.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]


# ---------------------------------------------------------------------------
# SVG flamegraph
# ---------------------------------------------------------------------------

FRAME_H = 16
WIDTH = 1200
PALETTE = ["#e66", "#e86", "#ea6", "#ec6", "#d95", "#c84"]


def _tree(stacks):
    """Merges stacks root-first into a nested {frame: [count, children]}."""
    root = {}
    for frames, n in stacks:
        node = root
        for f in frames:
            entry = node.setdefault(f, [0, {}])
            entry[0] += n
            node = entry[1]
    return root


def _emit(out, node, x, y, scale, depth):
    for name, (count, children) in sorted(node.items()):
        w = count * scale
        if w >= 0.5:  # sub-half-pixel boxes add bytes, not information
            color = PALETTE[(depth + len(name)) % len(PALETTE)]
            title = html.escape(f"{name} ({count} samples)", quote=True)
            label = html.escape(name[: max(0, int(w / 7))])
            out.append(
                f'<g><title>{title}</title>'
                f'<rect x="{x:.1f}" y="{y}" width="{w:.1f}" height="{FRAME_H - 1}" fill="{color}"/>'
                f'<text x="{x + 2:.1f}" y="{y + 12}" font-size="11" font-family="monospace">{label}</text></g>'
            )
            _emit(out, children, x, y + FRAME_H, scale, depth + 1)
        x += w


def flamegraph_svg(stacks):
    total = sum(n for _, n in stacks) or 1
    depth = max((len(f) for f, _ in stacks), default=0)
    height = (depth + 2) * FRAME_H
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{height}" '
        f'viewBox="0 0 {WIDTH} {height}">',
        f'<text x="4" y="{height - 4}" font-size="11" font-family="monospace">'
        f"{total} samples</text>",
    ]
    _emit(out, _tree(stacks), 0.0, 0, WIDTH / total, 0)
    out.append("</svg>")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Self-test corpus
# ---------------------------------------------------------------------------

GOOD = """\
span:sat_query;start;serve::worker_loop;serve::execute_task;omega::sat 7
start;serve::worker_loop;serve::execute_task;omega::fm::eliminate 3
start;serve::accept_loop 1
"""

BAD = [
    ("not 'stack<space>count'", "no_count_here\n"),
    ("is not an integer", "a;b many\n"),
    ("must be positive", "a;b 0\n"),
    ("empty frame", "a;;b 4\n"),
]


def self_test():
    failures = 0
    stacks, errors = parse_collapsed(GOOD)
    total = check(
        stacks, errors, 5, ["serve::execute_task", "omega::"], True
    )
    if errors or total != 11:
        failures += 1
        print(f"self-test: GOOD corpus rejected: {errors} ({total})", file=sys.stderr)
    for pattern, text in BAD:
        _, errors = parse_collapsed(text)
        if not any(pattern in e for e in errors):
            failures += 1
            print(
                f"self-test: BAD corpus not caught (wanted {pattern!r}, got {errors})",
                file=sys.stderr,
            )
    # Missing required frame and missing span attribution are failures.
    stacks, errors = parse_collapsed("a;b 2\n")
    check(stacks, errors, 1, ["not_present"], True)
    if len(errors) != 2:
        failures += 1
        print(f"self-test: wanted 2 semantic failures, got {errors}", file=sys.stderr)
    # Sample floor.
    stacks, errors = parse_collapsed("a 1\n")
    check(stacks, errors, 100, [], False)
    if not any("need at least 100" in e for e in errors):
        failures += 1
        print(f"self-test: sample floor not enforced: {errors}", file=sys.stderr)
    # The flamegraph renders every frame of the corpus.
    svg = flamegraph_svg(parse_collapsed(GOOD)[0])
    for needle in ("<svg", "serve::worker_loop", "11 samples", "</svg>"):
        if needle not in svg:
            failures += 1
            print(f"self-test: flamegraph missing {needle!r}", file=sys.stderr)
    if failures:
        print(f"self-test: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"self-test: ok (1 good, {len(BAD)} bad profiles, flamegraph rendered)")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", nargs="?", help="collapsed profile ('-' = stdin)")
    ap.add_argument("--self-test", action="store_true", help="run the embedded corpus")
    ap.add_argument(
        "--min-samples",
        type=int,
        default=1,
        metavar="N",
        help="fail unless the profile holds at least N samples (default 1)",
    )
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="fail unless some frame contains SUBSTR (repeatable; "
        "e.g. --require serve::execute_task --require omega::)",
    )
    ap.add_argument(
        "--require-span",
        action="store_true",
        help="fail unless at least one sample carries a span:<name> root",
    )
    ap.add_argument(
        "--flamegraph",
        metavar="OUT.svg",
        help="also render a self-contained SVG flamegraph to OUT.svg",
    )
    ap.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="print the N hottest frames by inclusive samples (default 10)",
    )
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.file:
        ap.error("FILE required unless --self-test")
    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    stacks, errors = parse_collapsed(text)
    total = check(stacks, errors, args.min_samples, args.require, args.require_span)
    if args.flamegraph and stacks:
        with open(args.flamegraph, "w") as f:
            f.write(flamegraph_svg(stacks))
        print(f"flamegraph written to {args.flamegraph}")
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{len(errors)} error(s) in {len(stacks)} stacks", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {total} samples across {len(stacks)} distinct stacks")
    for frame, n in hottest(stacks, args.top):
        print(f"  {n:>8}  {frame}")


if __name__ == "__main__":
    main()
