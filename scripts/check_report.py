#!/usr/bin/env python3
"""Validate QueryReport wide events against the shared schema.

One schema, three producers: the codegend request log (JSONL lines with
`"event": "report"`), the daemon's `GET /debug/requests` (a JSON array),
and `table1 --json` (each row embeds a `report` object). This checker
accepts any of the three shapes, auto-detected, and validates every
report it finds: required fields with the right types, the full
`omega::stats` counter vocabulary (no missing or unknown counters), and
the derived `exact_solves` consistent with the counters it is derived
from. Run with `--self-test` to prove the checker rejects the broken
shapes it exists to catch before trusting a pass verdict.
"""

import argparse
import json
import sys

# The omega::stats counter vocabulary (crates/omega/src/stats.rs), which
# QueryReport.counters, omega-replay --stats, and the /metrics bridge all
# share. Keep in lockstep with define_counters!.
COUNTER_FIELDS = (
    "tier0_unsat",
    "tier1_unsat",
    "tier1_sat",
    "cache_hits",
    "cache_misses",
    "evictions",
    "gist_hits",
    "gist_misses",
    "sat_degraded",
    "gist_degraded",
    "degrade_overflow",
    "degrade_budget",
    "degrade_depth",
    "degrade_rowcap",
    "degrade_deadline",
    "par_batches",
    "par_tasks",
    "par_steals",
    "persist_hits",
    "persist_misses",
    "persist_gist_hits",
    "persist_gist_misses",
    "persist_writes",
    "persist_truncations",
    "persist_degrade_io",
    "persist_degrade_checksum",
    "persist_degrade_version",
    "persist_degrade_mmap",
    "persist_degrade_unwritable",
)

REQUIRED = {
    "id": str,
    "kind": str,
    "source": str,
    "status": str,
    "class": str,
    "queue_ns": int,
    "ts_ms": int,
    "effort": int,
    "threads": int,
    "intra_threads": int,
    "lines": int,
    "bytes": int,
    "codegen_ns": int,
    "compile_ns": int,
    "request_ns": int,
    "certainty": str,
    "phases": dict,
    "counters": dict,
    "exact_solves": int,
    "slow": bool,
}


def check_report(r):
    """Raises AssertionError when `r` is not a valid QueryReport."""
    for key, ty in REQUIRED.items():
        if key not in r:
            raise AssertionError(f"missing field {key!r}: {r}")
        ok = isinstance(r[key], bool) if ty is bool else (
            isinstance(r[key], ty) and not isinstance(r[key], bool)
        )
        if not ok:
            raise AssertionError(f"field {key!r} is not {ty.__name__}: {r[key]!r}")
    if r["kind"] not in ("kernel", "adhoc", "batch"):
        raise AssertionError(f"unknown kind {r['kind']!r}")
    if r["status"] not in ("ok", "err"):
        raise AssertionError(f"unknown status {r['status']!r}")
    if r["class"] not in ("interactive", "batch", "bulk"):
        raise AssertionError(f"unknown priority class {r['class']!r}")
    if r["queue_ns"] < 0:
        raise AssertionError(f"negative queue_ns: {r['queue_ns']!r}")
    if r["status"] == "err" and not isinstance(r.get("error"), str):
        raise AssertionError(f"err report without error message: {r}")
    if r["status"] == "ok":
        if r["certainty"] != "exact" and not r["certainty"].startswith("approximate:"):
            raise AssertionError(f"unknown certainty {r['certainty']!r}")
        if r["lines"] <= 0 or r["bytes"] <= 0:
            raise AssertionError(f"ok report without generated code: {r}")
    got = set(r["counters"])
    want = set(COUNTER_FIELDS)
    if got != want:
        raise AssertionError(
            f"counter vocabulary mismatch: missing {sorted(want - got)}, unknown {sorted(got - want)}"
        )
    for name, v in r["counters"].items():
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            raise AssertionError(f"counter {name!r} is not a non-negative int: {v!r}")
    for name, ns in r["phases"].items():
        if not isinstance(ns, int) or isinstance(ns, bool) or ns < 0:
            raise AssertionError(f"phase {name!r} is not non-negative ns: {ns!r}")
    c = r["counters"]
    cheap = (
        c["tier0_unsat"] + c["tier1_unsat"] + c["tier1_sat"] + c["persist_hits"]
    )
    derived = max(0, c["cache_misses"] - cheap)
    if r["exact_solves"] != derived:
        raise AssertionError(
            f"exact_solves {r['exact_solves']} != derived {derived} from counters"
        )
    if "retained" in r and not isinstance(r["retained"], str):
        raise AssertionError(f"retained is not a path string: {r['retained']!r}")
    if r["slow"] is False and "retained" in r:
        raise AssertionError(f"fast job with retained artifacts: {r}")


def extract(text):
    """Returns the list of reports found in any of the three shapes."""
    stripped = text.lstrip()
    if stripped.startswith("["):
        return json.loads(text)  # /debug/requests array
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None  # several objects: treat as a JSONL log below
        if isinstance(doc, dict):
            if "rows" in doc:  # table1 --json snapshot
                return [row["report"] for row in doc["rows"] if "report" in row]
            if doc.get("event") == "report":
                return [doc]
    reports = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if obj.get("event") == "report":
            reports.append(obj)
    return reports


def sample():
    counters = {name: 0 for name in COUNTER_FIELDS}
    counters["cache_misses"] = 7
    counters["tier0_unsat"] = 1
    counters["tier1_sat"] = 2
    return {
        "event": "report",
        "id": "r-000001",
        "kind": "kernel",
        "source": "gemm",
        "status": "ok",
        "class": "interactive",
        "queue_ns": 700,
        "ts_ms": 1,
        "effort": 1,
        "threads": 2,
        "intra_threads": 2,
        "lines": 12,
        "bytes": 240,
        "codegen_ns": 1000,
        "compile_ns": 2000,
        "request_ns": 4000,
        "certainty": "exact",
        "dynamic_cost": 42,
        "phases": {"cg_generate": 900},
        "counters": counters,
        "exact_solves": 4,
        "slow": False,
    }


def self_test():
    check_report(sample())

    def mutate(**kv):
        r = sample()
        for k, v in kv.items():
            if v is None:
                r.pop(k, None)
            else:
                r[k] = v
        return r

    bad_counters_extra = sample()
    bad_counters_extra["counters"]["not_a_counter"] = 1
    bad_counters_missing = sample()
    del bad_counters_missing["counters"]["par_steals"]
    bad = [
        mutate(id=None),  # missing required field
        mutate(status="maybe"),  # unknown status
        mutate(**{"class": "vip"}),  # unknown priority class
        mutate(**{"class": None}),  # missing priority class
        mutate(queue_ns=-1),  # negative queue wait
        mutate(queue_ns=None),  # missing queue wait
        mutate(status="err"),  # err without error message
        mutate(certainty="sure"),  # unknown certainty
        mutate(lines=0),  # ok without code
        mutate(exact_solves=99),  # derived field inconsistent
        mutate(slow=False, retained="somewhere"),  # fast job kept artifacts
        mutate(ts_ms="yesterday"),  # wrong type
        bad_counters_extra,
        bad_counters_missing,
    ]
    for r in bad:
        try:
            check_report(r)
        except AssertionError:
            continue
        sys.exit(f"self-test: accepted invalid report {r}")
    # All three container shapes round-trip through extract().
    as_log = json.dumps(sample())
    as_array = json.dumps([sample(), sample()])
    as_table1 = json.dumps({"version": 1, "rows": [{"kernel": "gemm", "report": sample()}]})
    assert len(extract(as_log)) == 1
    assert len(extract(as_array)) == 2
    assert len(extract(as_table1)) == 1
    print("self-test ok: all malformed reports rejected, all shapes extracted")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", nargs="?", help="JSONL log, /debug/requests array, or table1 --json snapshot")
    ap.add_argument("--min", type=int, default=1, help="minimum number of reports expected")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        self_test()
        return
    if not args.file:
        ap.error("a file (or --self-test) is required")
    with open(args.file) as f:
        reports = extract(f.read())
    if len(reports) < args.min:
        sys.exit(f"expected at least {args.min} report(s), found {len(reports)}")
    for r in reports:
        check_report(r)
    print(f"ok: {len(reports)} valid report(s)")


if __name__ == "__main__":
    main()
