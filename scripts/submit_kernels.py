#!/usr/bin/env python3
"""Submit the five Table 1 kernels to a running codegend concurrently.

Usage: submit_kernels.py [--port PORT] [--n N] [--tag TAG]

Opens one line-protocol connection per kernel, requires every reply to be
`ok ... certainty=exact` with a complete body, and exits non-zero with the
collected failures otherwise. CI uses this both for the telemetry smoke
lane and for the crash-recovery lane (which submits the same load twice —
cold and warm — around a SIGKILL).
"""

import argparse
import socket
import sys
import threading

KERNELS = ("gemv", "qr", "swim", "gemm", "lu")


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--port", type=int, default=7077)
    ap.add_argument("--n", type=int, default=64)
    ap.add_argument("--tag", default="ci")
    args = ap.parse_args()

    failures = []

    def job(kernel: str) -> None:
        try:
            s = socket.create_connection(("127.0.0.1", args.port), timeout=120)
            s.sendall(f"gen kernel={kernel} n={args.n} id={args.tag}-{kernel}\n".encode())
            f = s.makefile("rb")
            header = f.readline().decode().strip()
            if not header.startswith("ok "):
                failures.append(f"{kernel}: {header}")
                return
            fields = dict(t.split("=", 1) for t in header.split()[1:] if "=" in t)
            body = f.read(int(fields["bytes"]))
            if fields.get("certainty") != "exact" or len(body) != int(fields["bytes"]):
                failures.append(f"{kernel}: bad reply {header}")
            print(kernel, "->", header.split(" bytes=")[0])
        except Exception as e:  # noqa: BLE001 - report, don't crash the thread
            failures.append(f"{kernel}: {e!r}")

    threads = [threading.Thread(target=job, args=(k,)) for k in KERNELS]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        sys.exit("\n".join(failures))


if __name__ == "__main__":
    main()
