#!/usr/bin/env python3
"""Drive a running codegend with a concurrent mixed-priority job load.

Usage: load_driver.py [--port PORT] [--jobs N] [--concurrency C]
                      [--clients K] [--batch-share PCT]

Submits N line-protocol jobs from C concurrent connections spread over K
client identities, mixing the three priority classes (60% interactive,
30% batch, 10% bulk by default weight) and folding a share of the batch
traffic into multi-space `batch` requests so the queue sees both unit-
and N-cost entries. Ad-hoc iteration spaces are drawn from a small
rotation of parametric sets, so each job is real solver work but bounded.

Shed replies (`busy ...`) are an expected answer under load, not a
failure: they are counted and reported, and the exit status reflects
only protocol failures (malformed replies, truncated bodies, socket
errors) and `err` replies. CI asserts the shed *rate* separately from
the scraped /metrics via check_metrics.py --assert.

The deterministic seed makes a given (jobs, concurrency, clients)
configuration replayable.
"""

import argparse
import collections
import random
import socket
import sys
import threading
import time

SPACES = (
    "[n] -> { [i] : 0 <= i < n }",
    "[n] -> { [i,j] : 0 <= i < n and 0 <= j < i }",
    "[n] -> { [i,j] : 0 <= i < n and 0 <= j < n and i + j < n }",
    "[n,m] -> { [i,j] : 0 <= i < n and 0 <= j < m }",
)

# (class tag, weight): the interactive-heavy mix of a shared deployment.
CLASS_MIX = (("interactive", 6), ("batch", 3), ("bulk", 1))


def read_reply(f):
    """One reply: the header line plus, for `ok`, the byte-counted body.
    Returns (status, header) where status is ok/err/busy/batch/bad."""
    header = f.readline().decode().strip()
    if not header:
        return "bad", "empty reply (connection closed?)"
    fields = dict(t.split("=", 1) for t in header.split()[1:] if "=" in t)
    if header.startswith("ok "):
        body = f.read(int(fields["bytes"]))
        if len(body) != int(fields["bytes"]):
            return "bad", f"truncated body: {header}"
        return "ok", header
    if header.startswith("busy "):
        return "busy", header
    if header.startswith("err "):
        return "err", header
    if header.startswith("batch "):
        return "batch", header
    return "bad", f"unrecognized reply: {header}"


def job_lines(args):
    """The full job list, pre-shuffled: (line, priority class, replies)."""
    rng = random.Random(args.seed)
    classes = [c for c, w in CLASS_MIX for _ in range(w)]
    jobs = []
    i = 0
    while i < args.jobs:
        prio = rng.choice(classes)
        client = f"c{rng.randrange(args.clients)}"
        if prio == "batch" and rng.random() < args.batch_share / 100.0:
            # One batch request carrying several spaces: costs its space
            # count in the queue, streams one reply per space.
            count = rng.randint(2, 6)
            spaces = " ; ".join(rng.choice(SPACES) for _ in range(count))
            jobs.append(
                (
                    f"batch id=ld-{i} prio=batch client={client} space={spaces}",
                    prio,
                    count,
                )
            )
            i += count
        else:
            space = rng.choice(SPACES)
            jobs.append(
                (
                    f"gen id=ld-{i} prio={prio} client={client} space={space}",
                    prio,
                    1,
                )
            )
            i += 1
    rng.shuffle(jobs)
    return jobs


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--port", type=int, default=7077)
    ap.add_argument("--jobs", type=int, default=2000, help="total job count")
    ap.add_argument("--concurrency", type=int, default=64)
    ap.add_argument("--clients", type=int, default=16)
    ap.add_argument(
        "--batch-share",
        type=float,
        default=50.0,
        help="%% of batch-class traffic folded into multi-space requests",
    )
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    jobs = job_lines(args)
    cursor = [0]
    lock = threading.Lock()
    tally = collections.Counter()  # (class, status) -> replies
    failures = []

    def worker() -> None:
        try:
            s = socket.create_connection(("127.0.0.1", args.port), timeout=300)
            f = s.makefile("rb")
        except OSError as e:
            failures.append(f"connect: {e!r}")
            return
        while True:
            with lock:
                if cursor[0] >= len(jobs):
                    return
                line, prio, replies = jobs[cursor[0]]
                cursor[0] += 1
            try:
                s.sendall((line + "\n").encode())
                status, header = read_reply(f)
                if status == "busy":
                    # One shed reply answers the whole request, batch or
                    # not: count it as one shed request.
                    with lock:
                        tally[(prio, "busy")] += 1
                    continue
                # A batch acknowledgment precedes its per-space replies.
                expect = replies if status == "batch" else 0
                if status != "batch":
                    with lock:
                        tally[(prio, status)] += 1
                for _ in range(expect):
                    status, header = read_reply(f)
                    with lock:
                        tally[(prio, status)] += 1
                if status == "bad":
                    failures.append(header)
                    return
            except OSError as e:
                failures.append(f"{line.split(' space=')[0]}: {e!r}")
                return

    start = time.monotonic()
    threads = [threading.Thread(target=worker) for _ in range(args.concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.monotonic() - start

    total = sum(tally.values())
    print(f"{total} replies in {elapsed:.2f}s ({total / max(elapsed, 1e-9):.0f}/s)")
    for prio, _ in CLASS_MIX:
        row = {st: tally.get((prio, st), 0) for st in ("ok", "err", "busy", "bad")}
        print(
            f"  {prio:>11}: ok={row['ok']} err={row['err']} "
            f"shed={row['busy']} bad={row['bad']}"
        )
    errs = sum(v for (_, st), v in tally.items() if st in ("err", "bad"))
    if failures or errs:
        for msg in failures[:20]:
            print(f"failure: {msg}", file=sys.stderr)
        sys.exit(f"{errs} bad replies, {len(failures)} connection failures")
    if tally.get(("interactive", "ok"), 0) == 0:
        sys.exit("no interactive job completed — the load never ran?")


if __name__ == "__main__":
    main()
